//! Lasso regression via cyclic coordinate descent on standardized
//! features.

use crate::dataset::{Standardizer, TargetScaler};
use crate::engine::{Regressor, TrainError};
use crate::linalg::{dot, Matrix};

/// Lasso (L1-penalized linear) regressor.
#[derive(Debug, Clone)]
pub struct Lasso {
    /// L1 penalty. The default (1e-3) keeps the model informative on the
    /// unit-variance targets of this crate; scikit-learn's default of 1.0
    /// zeroes every coefficient for targets in `[0, 1]`.
    pub alpha: f64,
    /// Maximum coordinate-descent sweeps.
    pub max_iter: usize,
    /// Convergence tolerance on the coefficient updates.
    pub tol: f64,
    scaler: Option<Standardizer>,
    yscale: Option<TargetScaler>,
    weights: Vec<f64>,
}

impl Lasso {
    /// Lasso with penalty `alpha`.
    pub fn new(alpha: f64) -> Self {
        Lasso {
            alpha,
            max_iter: 1000,
            tol: 1e-7,
            scaler: None,
            yscale: None,
            weights: Vec::new(),
        }
    }

    /// The fitted coefficients in standardized space.
    pub fn coefficients(&self) -> &[f64] {
        &self.weights
    }
}

#[inline]
fn soft_threshold(v: f64, t: f64) -> f64 {
    if v > t {
        v - t
    } else if v < -t {
        v + t
    } else {
        0.0
    }
}

impl Regressor for Lasso {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        let n = x.nrows();
        if n == 0 || n != y.len() {
            return Err(TrainError::new("invalid training set"));
        }
        let scaler = Standardizer::fit(x);
        let xs = scaler.transform(x);
        let ys = TargetScaler::fit(y);
        let yt: Vec<f64> = y.iter().map(|&v| ys.scale(v)).collect();
        let d = xs.ncols();
        let nf = n as f64;
        // Columns have unit variance after standardization, so the
        // per-coordinate curvature is n (sum of squares).
        let col_sq: Vec<f64> = (0..d)
            .map(|c| xs.col(c).iter().map(|v| v * v).sum::<f64>())
            .collect();
        let mut w = vec![0.0; d];
        let mut residual = yt.clone(); // r = y - Xw, starts with w = 0
        for _ in 0..self.max_iter {
            let mut max_change = 0.0f64;
            for j in 0..d {
                let col = xs.col(j);
                // rho = x_j . (r + w_j * x_j)
                let rho = dot(&col, &residual) + w[j] * col_sq[j];
                let new_w = soft_threshold(rho / nf, self.alpha) / (col_sq[j] / nf).max(1e-12);
                let delta = new_w - w[j];
                if delta != 0.0 {
                    for (r, &xc) in residual.iter_mut().zip(col.iter()) {
                        *r -= delta * xc;
                    }
                    w[j] = new_w;
                    max_change = max_change.max(delta.abs());
                }
            }
            if max_change < self.tol {
                break;
            }
        }
        self.weights = w;
        self.scaler = Some(scaler);
        self.yscale = Some(ys);
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        let (Some(s), Some(ys)) = (&self.scaler, &self.yscale) else {
            return 0.0;
        };
        ys.unscale(dot(&s.transform_row(row), &self.weights))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse_linear_data() -> (Matrix, Vec<f64>) {
        // y depends on features 0 and 2 only; feature 1 is noise.
        let rows: Vec<Vec<f64>> = (0..150)
            .map(|i| {
                vec![
                    (i % 10) as f64,
                    ((i * 13) % 7) as f64,
                    ((i / 10) % 15) as f64,
                ]
            })
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 4.0 * r[0] - 3.0 * r[2]).collect();
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn small_alpha_fits_well() {
        let (x, y) = sparse_linear_data();
        let mut m = Lasso::new(1e-4);
        m.fit(&x, &y).unwrap();
        for (row, &t) in x.rows_iter().zip(y.iter()).take(20) {
            assert!((m.predict_row(row) - t).abs() < 0.5);
        }
    }

    #[test]
    fn irrelevant_feature_is_shrunk() {
        let (x, y) = sparse_linear_data();
        let mut m = Lasso::new(0.05);
        m.fit(&x, &y).unwrap();
        let w = m.coefficients();
        assert!(
            w[1].abs() < 0.2 * w[0].abs(),
            "noise coefficient {} not shrunk vs {}",
            w[1],
            w[0]
        );
    }

    #[test]
    fn huge_alpha_zeroes_everything() {
        let (x, y) = sparse_linear_data();
        let mut m = Lasso::new(1e3);
        m.fit(&x, &y).unwrap();
        assert!(m.coefficients().iter().all(|&w| w == 0.0));
        // Prediction falls back to the target mean.
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        assert!((m.predict_row(x.row(0)) - mean).abs() < 1e-9);
    }

    #[test]
    fn soft_threshold_cases() {
        assert_eq!(soft_threshold(5.0, 2.0), 3.0);
        assert_eq!(soft_threshold(-5.0, 2.0), -3.0);
        assert_eq!(soft_threshold(1.0, 2.0), 0.0);
    }
}
