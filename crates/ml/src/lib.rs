//! # autoax-ml
//!
//! From-scratch supervised learning engines for the autoAx (DAC 2019)
//! reproduction — a minimal stand-in for the scikit-learn regressors the
//! paper compares in Table 3.
//!
//! All fourteen engines of the paper are implemented:
//! random forest, decision tree (CART), k-nearest neighbours, Bayesian
//! ridge, partial least squares, lasso, AdaBoost.R2, least-angle
//! regression, gradient boosting, an MLP, Gaussian-process regression,
//! kernel ridge and an SGD linear model — plus fixed-weight linear
//! predictors used for the paper's naïve models.
//!
//! The quality criterion of the methodology is **fidelity**
//! ([`fidelity::fidelity`]): how often two configurations are ranked in the
//! same order by the model as by reality. Fidelity is invariant under
//! monotone transforms, which is why the naïve models need no calibration.
//!
//! # Example
//!
//! ```
//! use autoax_ml::engine::{EngineKind, Regressor};
//! use autoax_ml::linalg::Matrix;
//!
//! // y = 2*x0 + x1, learned by a random forest
//! let x = Matrix::from_rows(&(0..100).map(|i| {
//!     vec![(i % 10) as f64, (i / 10) as f64]
//! }).collect::<Vec<_>>());
//! let y: Vec<f64> = (0..100).map(|i| 2.0 * (i % 10) as f64 + (i / 10) as f64).collect();
//! let mut model = EngineKind::RandomForest.make(42);
//! model.fit(&x, &y)?;
//! let pred = model.predict_row(&[3.0, 4.0]);
//! assert!((pred - 10.0).abs() < 2.0);
//! # Ok::<(), autoax_ml::engine::TrainError>(())
//! ```

pub mod adaboost;
pub mod compiled;
pub mod dataset;
pub mod engine;
pub mod fidelity;
pub mod forest;
pub mod gbt;
pub mod gp;
pub mod kernel_ridge;
pub mod knn;
pub mod lars;
pub mod lasso;
pub mod linalg;
pub mod linear;
pub mod mlp;
pub mod pls;
pub mod tree;

pub use compiled::{CompiledForest, GatherForest, GatherLayout};
pub use engine::{EngineKind, Regressor, TrainError};
pub use fidelity::{fidelity, FidelityError};
pub use linalg::Matrix;
