//! Minimal dense linear algebra: a row-major matrix, products, and a
//! Cholesky solver for the symmetric positive-definite systems that ridge,
//! Gaussian-process and kernel-ridge regression need.

/// Dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from row slices.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths or the input is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols);
        Matrix { rows, cols, data }
    }

    /// Consumes the matrix into its flat row-major buffer — lets callers
    /// that assemble feature matrices in a reused scratch `Vec` take the
    /// allocation back after prediction.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over rows.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks(self.cols)
    }

    /// Column `c` copied into a vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let v = self.get(r, k);
                if v == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out.data[r * other.cols + c] += v * other.get(k, c);
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        self.rows_iter().map(|row| dot(row, v)).collect()
    }

    /// `selfᵀ * v` without materializing the transpose.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn t_matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, v.len(), "t_matvec dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (row, &vi) in self.rows_iter().zip(v.iter()) {
            for (o, &x) in out.iter_mut().zip(row.iter()) {
                *o += vi * x;
            }
        }
        out
    }

    /// Gram matrix `selfᵀ * self` (symmetric, `cols × cols`).
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for row in self.rows_iter() {
            for i in 0..self.cols {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for (j, &rj) in row.iter().enumerate().skip(i) {
                    g.data[i * self.cols + j] += ri * rj;
                }
            }
        }
        for i in 0..self.cols {
            for j in 0..i {
                g.data[i * self.cols + j] = g.data[j * self.cols + i];
            }
        }
        g
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics on length mismatch (debug builds).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance between two equal-length slices.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Cholesky factorization of a symmetric positive-definite matrix.
///
/// Returns the lower-triangular factor `L` with `L Lᵀ = A`, or `None` if
/// the matrix is not positive definite (after adding `jitter` to the
/// diagonal).
pub fn cholesky(a: &Matrix, jitter: f64) -> Option<Matrix> {
    assert_eq!(a.nrows(), a.ncols(), "cholesky needs a square matrix");
    let n = a.nrows();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j) + if i == j { jitter } else { 0.0 };
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Some(l)
}

/// Solves `A x = b` for SPD `A` via Cholesky (with automatic jitter
/// escalation when the matrix is near-singular). Returns `None` when the
/// system cannot be solved even with jitter.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    for jitter in [0.0, 1e-10, 1e-8, 1e-6, 1e-4, 1e-2] {
        if let Some(l) = cholesky(a, jitter) {
            return Some(cholesky_solve(&l, b));
        }
    }
    None
}

/// Solves `L Lᵀ x = b` given the Cholesky factor `L`.
pub fn cholesky_solve(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.nrows();
    assert_eq!(b.len(), n);
    // forward: L y = b
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut s = b[i];
        for (k, &yk) in y.iter().enumerate().take(i) {
            s -= l.get(i, k) * yk;
        }
        y[i] = s / l.get(i, i);
    }
    // backward: Lᵀ x = y
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for (k, &xk) in x.iter().enumerate().skip(i + 1) {
            s -= l.get(k, i) * xk;
        }
        x[i] = s / l.get(i, i);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn gram_matches_explicit() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let g = a.gram();
        let explicit = a.transpose().matmul(&a);
        for i in 0..2 {
            for j in 0..2 {
                assert!((g.get(i, j) - explicit.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // A = M Mᵀ + I is SPD
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let mut a = m.matmul(&m.transpose());
        for i in 0..2 {
            a.set(i, i, a.get(i, i) + 1.0);
        }
        let b = vec![1.0, 2.0];
        let x = solve_spd(&a, &b).expect("solvable");
        let back = a.matvec(&x);
        for (u, v) in back.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert!(cholesky(&a, 0.0).is_none());
    }

    #[test]
    fn matvec_and_t_matvec() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0, 11.0]);
        assert_eq!(a.t_matvec(&[1.0, 1.0, 1.0]), vec![9.0, 12.0]);
    }

    #[test]
    fn dot_and_dist() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }
}
