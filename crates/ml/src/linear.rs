//! Linear models: ridge regression (closed form), Bayesian ridge
//! (evidence maximization), an SGD linear regressor, and fixed-weight
//! linear predictors for the paper's naïve models.

use crate::dataset::{Standardizer, TargetScaler};
use crate::engine::{Regressor, TrainError};
use crate::linalg::{dot, solve_spd, Matrix};

/// Ridge regression on standardized features.
#[derive(Debug, Clone)]
pub struct Ridge {
    /// L2 penalty.
    pub alpha: f64,
    scaler: Option<Standardizer>,
    yscale: Option<TargetScaler>,
    weights: Vec<f64>,
}

impl Ridge {
    /// Ridge with penalty `alpha`.
    pub fn new(alpha: f64) -> Self {
        Ridge {
            alpha,
            scaler: None,
            yscale: None,
            weights: Vec::new(),
        }
    }

    /// The fitted `(scaler, target scaler, weights)` triple, or `None`
    /// before fitting (serialization hook).
    pub fn fitted_parts(&self) -> Option<(&Standardizer, &TargetScaler, &[f64])> {
        match (&self.scaler, &self.yscale) {
            (Some(s), Some(y)) => Some((s, y, &self.weights)),
            _ => None,
        }
    }

    /// Rebuilds a fitted model from stored parts.
    pub fn from_fitted_parts(
        alpha: f64,
        scaler: Standardizer,
        yscale: TargetScaler,
        weights: Vec<f64>,
    ) -> Self {
        Ridge {
            alpha,
            scaler: Some(scaler),
            yscale: Some(yscale),
            weights,
        }
    }
}

fn fit_l2(x: &Matrix, y: &[f64], alpha: f64) -> Result<Vec<f64>, TrainError> {
    let mut gram = x.gram();
    for i in 0..gram.nrows() {
        gram.set(i, i, gram.get(i, i) + alpha);
    }
    let xty = x.t_matvec(y);
    solve_spd(&gram, &xty).ok_or_else(|| TrainError::new("singular normal equations"))
}

impl Regressor for Ridge {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        if x.nrows() == 0 || x.nrows() != y.len() {
            return Err(TrainError::new("invalid training set"));
        }
        let scaler = Standardizer::fit(x);
        let xs = scaler.transform(x);
        let ys = TargetScaler::fit(y);
        let yt: Vec<f64> = y.iter().map(|&v| ys.scale(v)).collect();
        self.weights = fit_l2(&xs, &yt, self.alpha)?;
        self.scaler = Some(scaler);
        self.yscale = Some(ys);
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        let (Some(s), Some(ys)) = (&self.scaler, &self.yscale) else {
            return 0.0;
        };
        ys.unscale(dot(&s.transform_row(row), &self.weights))
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// Bayesian ridge regression: the L2 penalty is learned by evidence
/// maximization (MacKay updates) instead of being fixed.
#[derive(Debug, Clone)]
pub struct BayesianRidge {
    /// Maximum evidence-maximization iterations.
    pub max_iter: usize,
    scaler: Option<Standardizer>,
    yscale: Option<TargetScaler>,
    weights: Vec<f64>,
}

impl BayesianRidge {
    /// Defaults matching scikit-learn (300 iterations).
    pub fn new() -> Self {
        BayesianRidge {
            max_iter: 300,
            scaler: None,
            yscale: None,
            weights: Vec::new(),
        }
    }

    /// The fitted `(scaler, target scaler, weights)` triple, or `None`
    /// before fitting (serialization hook).
    pub fn fitted_parts(&self) -> Option<(&Standardizer, &TargetScaler, &[f64])> {
        match (&self.scaler, &self.yscale) {
            (Some(s), Some(y)) => Some((s, y, &self.weights)),
            _ => None,
        }
    }

    /// Rebuilds a fitted model from stored parts.
    pub fn from_fitted_parts(
        max_iter: usize,
        scaler: Standardizer,
        yscale: TargetScaler,
        weights: Vec<f64>,
    ) -> Self {
        BayesianRidge {
            max_iter,
            scaler: Some(scaler),
            yscale: Some(yscale),
            weights,
        }
    }
}

impl Default for BayesianRidge {
    fn default() -> Self {
        Self::new()
    }
}

impl Regressor for BayesianRidge {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        if x.nrows() == 0 || x.nrows() != y.len() {
            return Err(TrainError::new("invalid training set"));
        }
        let scaler = Standardizer::fit(x);
        let xs = scaler.transform(x);
        let ys = TargetScaler::fit(y);
        let yt: Vec<f64> = y.iter().map(|&v| ys.scale(v)).collect();
        let n = xs.nrows() as f64;
        let d = xs.ncols();
        let gram = xs.gram();
        let xty = xs.t_matvec(&yt);
        let mut alpha = 1.0; // precision of the weight prior
        let mut beta = 1.0; // precision of the noise
        let mut w = vec![0.0; d];
        for _ in 0..self.max_iter {
            // posterior mean: (beta * G + alpha I) w = beta * X^T y
            let mut a = gram.clone();
            for i in 0..d {
                for j in 0..d {
                    a.set(
                        i,
                        j,
                        beta * gram.get(i, j) + if i == j { alpha } else { 0.0 },
                    );
                }
            }
            let rhs: Vec<f64> = xty.iter().map(|&v| beta * v).collect();
            let new_w = solve_spd(&a, &rhs).ok_or_else(|| TrainError::new("singular posterior"))?;
            // effective number of parameters (gamma) via trace approximation
            let w_norm2: f64 = new_w.iter().map(|v| v * v).sum();
            let preds = xs.matvec(&new_w);
            let sse: f64 = preds
                .iter()
                .zip(yt.iter())
                .map(|(p, t)| (p - t) * (p - t))
                .sum();
            let gamma = d as f64 - alpha * trace_inv_approx(&a, d);
            let new_alpha = (gamma.max(1e-6)) / w_norm2.max(1e-12);
            let new_beta = (n - gamma).max(1e-6) / sse.max(1e-12);
            let converged = new_w
                .iter()
                .zip(w.iter())
                .all(|(a, b)| (a - b).abs() < 1e-8);
            w = new_w;
            alpha = new_alpha.clamp(1e-10, 1e10);
            beta = new_beta.clamp(1e-10, 1e10);
            if converged {
                break;
            }
        }
        self.weights = w;
        self.scaler = Some(scaler);
        self.yscale = Some(ys);
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        let (Some(s), Some(ys)) = (&self.scaler, &self.yscale) else {
            return 0.0;
        };
        ys.unscale(dot(&s.transform_row(row), &self.weights))
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// Approximates `trace(A^{-1})` by solving `A e_i = x_i` for each basis
/// vector (exact, O(d) solves — fine for the small `d` of this crate).
fn trace_inv_approx(a: &Matrix, d: usize) -> f64 {
    let mut tr = 0.0;
    for i in 0..d {
        let mut e = vec![0.0; d];
        e[i] = 1.0;
        if let Some(col) = solve_spd(a, &e) {
            tr += col[i];
        }
    }
    tr
}

/// Plain SGD linear regression on *unscaled* features.
///
/// Deliberately reproduces the failure mode the paper observed for
/// "Stochastic Gradient Descent" (24–25 % fidelity): without feature
/// standardization the condition number of the problem makes constant-rate
/// SGD oscillate or crawl. Gradients are clipped so the weights stay
/// finite. Use [`Ridge`] if you actually want a good linear model.
#[derive(Debug, Clone)]
pub struct SgdLinear {
    /// Constant learning rate.
    pub learning_rate: f64,
    /// Number of epochs.
    pub epochs: usize,
    /// Seed for sample ordering.
    pub seed: u64,
    weights: Vec<f64>,
    bias: f64,
}

impl SgdLinear {
    /// Defaults chosen to mirror an unscaled scikit-learn `SGDRegressor`.
    pub fn new(seed: u64) -> Self {
        SgdLinear {
            learning_rate: 1e-4,
            epochs: 100,
            seed,
            weights: Vec::new(),
            bias: 0.0,
        }
    }

    /// The fitted `(weights, bias)` pair (serialization hook).
    pub fn fitted_parts(&self) -> (&[f64], f64) {
        (&self.weights, self.bias)
    }

    /// Rebuilds a fitted model from stored parts.
    pub fn from_fitted_parts(seed: u64, weights: Vec<f64>, bias: f64) -> Self {
        SgdLinear {
            weights,
            bias,
            ..SgdLinear::new(seed)
        }
    }
}

impl Regressor for SgdLinear {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        if x.nrows() == 0 || x.nrows() != y.len() {
            return Err(TrainError::new("invalid training set"));
        }
        let d = x.ncols();
        self.weights = vec![0.0; d];
        self.bias = 0.0;
        let order = crate::dataset::shuffled_indices(x.nrows(), self.seed);
        for _ in 0..self.epochs {
            for &i in &order {
                let row = x.row(i);
                let pred = dot(row, &self.weights) + self.bias;
                let err = (pred - y[i]).clamp(-1e6, 1e6);
                for (w, &xi) in self.weights.iter_mut().zip(row.iter()) {
                    *w -= self.learning_rate * (err * xi).clamp(-1e3, 1e3);
                }
                self.bias -= self.learning_rate * err.clamp(-1e3, 1e3);
            }
        }
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        dot(row, &self.weights) + self.bias
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// A fixed linear predictor `w · x` used for the paper's naïve models
/// (sum of areas, negated sum of WMEDs). It never fits anything; fidelity
/// is invariant to affine calibration, so none is needed.
#[derive(Debug, Clone)]
pub struct LinearFixed {
    weights: Vec<f64>,
}

impl LinearFixed {
    /// A predictor with the given fixed weights.
    pub fn new(weights: Vec<f64>) -> Self {
        LinearFixed { weights }
    }

    /// The fixed weights (serialization hook).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl Regressor for LinearFixed {
    fn fit(&mut self, _x: &Matrix, _y: &[f64]) -> Result<(), TrainError> {
        Ok(()) // nothing to learn
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.weights.len(), "feature width mismatch");
        dot(row, &self.weights)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data() -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..120)
            .map(|i| vec![(i % 10) as f64, ((i / 10) % 12) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] - 2.0 * r[1] + 7.0).collect();
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn ridge_recovers_linear_function() {
        let (x, y) = linear_data();
        let mut m = Ridge::new(1e-6);
        m.fit(&x, &y).unwrap();
        for (row, &target) in x.rows_iter().zip(y.iter()).take(10) {
            assert!((m.predict_row(row) - target).abs() < 1e-3);
        }
    }

    #[test]
    fn ridge_shrinks_with_large_alpha() {
        let (x, y) = linear_data();
        let mut weak = Ridge::new(1e6);
        weak.fit(&x, &y).unwrap();
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        // Heavy regularization pushes predictions toward the mean.
        assert!((weak.predict_row(x.row(0)) - mean).abs() < 3.0);
    }

    #[test]
    fn bayesian_ridge_close_to_ridge_on_clean_data() {
        let (x, y) = linear_data();
        let mut br = BayesianRidge::new();
        br.fit(&x, &y).unwrap();
        for (row, &target) in x.rows_iter().zip(y.iter()).take(10) {
            assert!(
                (br.predict_row(row) - target).abs() < 0.1,
                "pred {} vs {}",
                br.predict_row(row),
                target
            );
        }
    }

    #[test]
    fn sgd_is_finite_but_mediocre() {
        let (x, y) = linear_data();
        let mut m = SgdLinear::new(1);
        m.fit(&x, &y).unwrap();
        let p = m.predict_row(x.row(0));
        assert!(p.is_finite());
    }

    #[test]
    fn linear_fixed_is_exact_dot_product() {
        let mut m = LinearFixed::new(vec![1.0, 0.0, 2.0]);
        m.fit(&Matrix::from_rows(&[vec![0.0, 0.0, 0.0]]), &[0.0])
            .unwrap();
        assert_eq!(m.predict_row(&[3.0, 99.0, 4.0]), 11.0);
    }
}
