//! A small multi-layer perceptron regressor (one ReLU hidden layer, Adam),
//! standing in for scikit-learn's `MLPRegressor`.

use crate::dataset::{shuffled_indices, Standardizer, TargetScaler};
use crate::engine::{Regressor, TrainError};
use crate::linalg::Matrix;

/// MLP regressor: `d -> hidden (ReLU) -> 1`, trained with Adam on MSE.
#[derive(Debug, Clone)]
pub struct Mlp {
    /// Hidden layer width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Initialization / shuffling seed.
    pub seed: u64,
    scaler: Option<Standardizer>,
    yscale: Option<TargetScaler>,
    w1: Vec<f64>, // hidden x d
    b1: Vec<f64>,
    w2: Vec<f64>, // hidden
    b2: f64,
}

impl Mlp {
    /// Defaults: 64 hidden units, 150 epochs, batch 32, lr 1e-3.
    pub fn new(seed: u64) -> Self {
        Mlp {
            hidden: 64,
            epochs: 150,
            batch: 32,
            learning_rate: 1e-3,
            seed,
            scaler: None,
            yscale: None,
            w1: Vec::new(),
            b1: Vec::new(),
            w2: Vec::new(),
            b2: 0.0,
        }
    }

    fn forward(&self, row: &[f64], hidden_out: &mut [f64]) -> f64 {
        let d = row.len();
        for (h, ho) in hidden_out.iter_mut().enumerate() {
            let mut z = self.b1[h];
            for (j, &xj) in row.iter().enumerate() {
                z += self.w1[h * d + j] * xj;
            }
            *ho = z.max(0.0); // ReLU
        }
        let mut out = self.b2;
        for (h, &ho) in hidden_out.iter().enumerate() {
            out += self.w2[h] * ho;
        }
        out
    }
}

struct Adam {
    m: Vec<f64>,
    v: Vec<f64>,
    t: i32,
}

impl Adam {
    fn new(n: usize) -> Self {
        Adam {
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
        }
    }

    fn step(&mut self, params: &mut [f64], grads: &[f64], lr: f64) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        self.t += 1;
        let bc1 = 1.0 - B1.powi(self.t);
        let bc2 = 1.0 - B2.powi(self.t);
        for i in 0..params.len() {
            self.m[i] = B1 * self.m[i] + (1.0 - B1) * grads[i];
            self.v[i] = B2 * self.v[i] + (1.0 - B2) * grads[i] * grads[i];
            let mh = self.m[i] / bc1;
            let vh = self.v[i] / bc2;
            params[i] -= lr * mh / (vh.sqrt() + EPS);
        }
    }
}

impl Regressor for Mlp {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        let n = x.nrows();
        if n == 0 || n != y.len() {
            return Err(TrainError::new("invalid training set"));
        }
        let scaler = Standardizer::fit(x);
        let xs = scaler.transform(x);
        let ys = TargetScaler::fit(y);
        let yt: Vec<f64> = y.iter().map(|&v| ys.scale(v)).collect();
        let d = xs.ncols();
        let h = self.hidden;

        // He initialization from a deterministic stream.
        let mut st = self.seed ^ 0x3317_0000_0000_0001;
        let mut next_gauss = || {
            // sum of 4 uniforms, roughly gaussian, scaled
            let mut s = 0.0;
            for _ in 0..4 {
                st = st.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = st;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                s += (z ^ (z >> 31)) as f64 / u64::MAX as f64;
            }
            (s - 2.0) * 1.732 // variance ~1
        };
        let scale1 = (2.0 / d as f64).sqrt();
        self.w1 = (0..h * d).map(|_| next_gauss() * scale1).collect();
        self.b1 = vec![0.0; h];
        let scale2 = (2.0 / h as f64).sqrt();
        self.w2 = (0..h).map(|_| next_gauss() * scale2).collect();
        self.b2 = 0.0;

        let mut adam_w1 = Adam::new(h * d);
        let mut adam_b1 = Adam::new(h);
        let mut adam_w2 = Adam::new(h);
        let mut adam_b2 = Adam::new(1);

        let mut g_w1 = vec![0.0; h * d];
        let mut g_b1 = vec![0.0; h];
        let mut g_w2 = vec![0.0; h];
        let mut g_b2 = vec![0.0; 1];
        let mut hidden_out = vec![0.0; h];

        for epoch in 0..self.epochs {
            let order = shuffled_indices(n, self.seed.wrapping_add(epoch as u64));
            for chunk in order.chunks(self.batch) {
                g_w1.iter_mut().for_each(|g| *g = 0.0);
                g_b1.iter_mut().for_each(|g| *g = 0.0);
                g_w2.iter_mut().for_each(|g| *g = 0.0);
                g_b2[0] = 0.0;
                for &i in chunk {
                    let row = xs.row(i);
                    let pred = self.forward(row, &mut hidden_out);
                    let err = pred - yt[i];
                    // output layer grads
                    for (hh, &ho) in hidden_out.iter().enumerate() {
                        g_w2[hh] += err * ho;
                        if ho > 0.0 {
                            let back = err * self.w2[hh];
                            g_b1[hh] += back;
                            for (j, &xj) in row.iter().enumerate() {
                                g_w1[hh * d + j] += back * xj;
                            }
                        }
                    }
                    g_b2[0] += err;
                }
                let bs = chunk.len() as f64;
                g_w1.iter_mut().for_each(|g| *g /= bs);
                g_b1.iter_mut().for_each(|g| *g /= bs);
                g_w2.iter_mut().for_each(|g| *g /= bs);
                g_b2[0] /= bs;
                adam_w1.step(&mut self.w1, &g_w1, self.learning_rate);
                adam_b1.step(&mut self.b1, &g_b1, self.learning_rate);
                adam_w2.step(&mut self.w2, &g_w2, self.learning_rate);
                let mut b2 = [self.b2];
                adam_b2.step(&mut b2, &g_b2, self.learning_rate);
                self.b2 = b2[0];
            }
        }
        self.scaler = Some(scaler);
        self.yscale = Some(ys);
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        let (Some(s), Some(ys)) = (&self.scaler, &self.yscale) else {
            return 0.0;
        };
        let xr = s.transform_row(row);
        let mut hidden = vec![0.0; self.hidden];
        ys.unscale(self.forward(&xr, &mut hidden))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fidelity::fidelity;

    #[test]
    fn learns_nonlinear_function() {
        let rows: Vec<Vec<f64>> = (0..256)
            .map(|i| vec![(i % 16) as f64 / 15.0, (i / 16) as f64 / 15.0])
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| (r[0] * 3.0).sin() + r[1] * r[1])
            .collect();
        let x = Matrix::from_rows(&rows);
        let mut m = Mlp::new(0);
        m.epochs = 80;
        m.fit(&x, &y).unwrap();
        let preds: Vec<f64> = x.rows_iter().map(|r| m.predict_row(r)).collect();
        let f = fidelity(&preds, &y).unwrap();
        assert!(f > 0.85, "MLP fidelity {f}");
    }

    #[test]
    fn deterministic_given_seed() {
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64 / 63.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * 2.0).collect();
        let x = Matrix::from_rows(&rows);
        let mut m1 = Mlp::new(5);
        let mut m2 = Mlp::new(5);
        m1.epochs = 10;
        m2.epochs = 10;
        m1.fit(&x, &y).unwrap();
        m2.fit(&x, &y).unwrap();
        assert_eq!(m1.predict_row(&[0.4]), m2.predict_row(&[0.4]));
    }

    #[test]
    fn predictions_are_finite() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 * 1e4]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * 0.5).collect();
        let x = Matrix::from_rows(&rows);
        let mut m = Mlp::new(1);
        m.epochs = 20;
        m.fit(&x, &y).unwrap();
        assert!(m.predict_row(&[123456.0]).is_finite());
    }
}
