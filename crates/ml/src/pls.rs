//! Partial least squares regression (NIPALS, single response).

use crate::dataset::{Standardizer, TargetScaler};
use crate::engine::{Regressor, TrainError};
use crate::linalg::{dot, Matrix};

/// PLS regressor with `n_components` latent directions.
#[derive(Debug, Clone)]
pub struct PartialLeastSquares {
    /// Number of latent components (scikit-learn default: 2).
    pub n_components: usize,
    scaler: Option<Standardizer>,
    yscale: Option<TargetScaler>,
    weights: Vec<f64>, // final regression vector in standardized space
}

impl PartialLeastSquares {
    /// PLS with 2 components.
    pub fn new() -> Self {
        PartialLeastSquares {
            n_components: 2,
            scaler: None,
            yscale: None,
            weights: Vec::new(),
        }
    }
}

impl Default for PartialLeastSquares {
    fn default() -> Self {
        Self::new()
    }
}

impl Regressor for PartialLeastSquares {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        let n = x.nrows();
        if n == 0 || n != y.len() {
            return Err(TrainError::new("invalid training set"));
        }
        let scaler = Standardizer::fit(x);
        let xs = scaler.transform(x);
        let ys = TargetScaler::fit(y);
        let mut yv: Vec<f64> = y.iter().map(|&v| ys.scale(v)).collect();
        let d = xs.ncols();
        // Deflation copies.
        let mut xd: Vec<Vec<f64>> = xs.rows_iter().map(|r| r.to_vec()).collect();
        // Accumulated prediction weights expressed on the original
        // (standardized) features: w_total.
        let mut w_total = vec![0.0; d];
        for _ in 0..self.n_components.min(d) {
            // weight vector: w = X^T y (single-response NIPALS shortcut)
            let mut w = vec![0.0; d];
            for (row, &yi) in xd.iter().zip(yv.iter()) {
                for (wj, &xj) in w.iter_mut().zip(row.iter()) {
                    *wj += xj * yi;
                }
            }
            let norm = dot(&w, &w).sqrt();
            if norm < 1e-12 {
                break;
            }
            for wj in w.iter_mut() {
                *wj /= norm;
            }
            // scores t = X w
            let t: Vec<f64> = xd.iter().map(|r| dot(r, &w)).collect();
            let tt = dot(&t, &t).max(1e-12);
            // x loading p = X^T t / (t.t), y loading q = y.t / (t.t)
            let mut p = vec![0.0; d];
            for (row, &ti) in xd.iter().zip(t.iter()) {
                for (pj, &xj) in p.iter_mut().zip(row.iter()) {
                    *pj += xj * ti;
                }
            }
            for pj in p.iter_mut() {
                *pj /= tt;
            }
            let q = dot(&yv, &t) / tt;
            // deflate
            for (row, &ti) in xd.iter_mut().zip(t.iter()) {
                for (xj, &pj) in row.iter_mut().zip(p.iter()) {
                    *xj -= ti * pj;
                }
            }
            for (yi, &ti) in yv.iter_mut().zip(t.iter()) {
                *yi -= q * ti;
            }
            // contribution of this component to the regression vector:
            // approximately w * q (ignoring the loading cross-terms, which
            // is the standard simple-PLS reconstruction for few components)
            for (wt, &wj) in w_total.iter_mut().zip(w.iter()) {
                *wt += wj * q;
            }
        }
        self.weights = w_total;
        self.scaler = Some(scaler);
        self.yscale = Some(ys);
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        let (Some(s), Some(ys)) = (&self.scaler, &self.yscale) else {
            return 0.0;
        };
        ys.unscale(dot(&s.transform_row(row), &self.weights))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fidelity::fidelity;

    #[test]
    fn captures_dominant_linear_direction() {
        let rows: Vec<Vec<f64>> = (0..120)
            .map(|i| vec![(i % 10) as f64, ((i / 10) % 12) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 5.0 * r[0] + 1.0 * r[1]).collect();
        let x = Matrix::from_rows(&rows);
        let mut m = PartialLeastSquares::new();
        m.fit(&x, &y).unwrap();
        let preds: Vec<f64> = x.rows_iter().map(|r| m.predict_row(r)).collect();
        let f = fidelity(&preds, &y).unwrap();
        assert!(f > 0.9, "PLS fidelity {f}");
    }

    #[test]
    fn more_components_do_not_hurt_fit() {
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![(i % 7) as f64, ((i / 7) % 9) as f64, ((i * 3) % 5) as f64])
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| 2.0 * r[0] - 4.0 * r[1] + 0.5 * r[2])
            .collect();
        let x = Matrix::from_rows(&rows);
        let mse_with = |k: usize| {
            let mut m = PartialLeastSquares::new();
            m.n_components = k;
            m.fit(&x, &y).unwrap();
            x.rows_iter()
                .zip(y.iter())
                .map(|(r, &t)| (m.predict_row(r) - t).powi(2))
                .sum::<f64>()
        };
        assert!(mse_with(3) <= mse_with(1) + 1e-9);
    }

    #[test]
    fn constant_target_is_safe() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let y = [4.0, 4.0, 4.0];
        let mut m = PartialLeastSquares::new();
        m.fit(&x, &y).unwrap();
        assert!((m.predict_row(&[2.5]) - 4.0).abs() < 1e-9);
    }
}
