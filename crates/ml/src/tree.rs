//! CART regression tree: the base learner for the decision-tree engine,
//! random forests, AdaBoost.R2 and gradient boosting.
//!
//! Splits minimize weighted variance (equivalently, maximize variance
//! reduction); supports sample weights, row subsets (bootstrap) and
//! per-split feature subsampling.

use crate::engine::{Regressor, TrainError};
use crate::linalg::Matrix;

/// Hyper-parameters of a [`DecisionTree`].
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum number of samples required to split a node.
    pub min_samples_split: usize,
    /// Minimum number of samples in each leaf.
    pub min_samples_leaf: usize,
    /// Number of features considered per split (`None` = all).
    pub max_features: Option<usize>,
    /// Seed for feature subsampling.
    pub seed: u64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 30,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf(f64),
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// Flat, public view of one fitted tree node — the serialization surface
/// used by `autoax-store` to round-trip trees without exposing the
/// internal arena. Node indices are positions in the exported vector;
/// node 0 is the root.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeRepr {
    /// A leaf predicting `value`.
    Leaf {
        /// Predicted target.
        value: f64,
    },
    /// An internal split: `row[feature] <= threshold` goes left.
    Split {
        /// Feature column index.
        feature: u32,
        /// Split threshold.
        threshold: f64,
        /// Index of the left child.
        left: u32,
        /// Index of the right child.
        right: u32,
    },
}

/// A CART regression tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    config: TreeConfig,
    nodes: Vec<Node>,
}

impl DecisionTree {
    /// Creates an unfitted tree with the given configuration.
    pub fn new(config: TreeConfig) -> Self {
        DecisionTree {
            config,
            nodes: Vec::new(),
        }
    }

    /// Fits on a row subset with optional per-sample weights.
    ///
    /// `indices` selects (with multiplicity) the training rows — this is
    /// how bootstrap resampling is expressed. Weights default to 1.
    ///
    /// # Errors
    /// Returns an error if the subset is empty or dimensions mismatch.
    pub fn fit_subset(
        &mut self,
        x: &Matrix,
        y: &[f64],
        indices: &[usize],
        weights: Option<&[f64]>,
    ) -> Result<(), TrainError> {
        if indices.is_empty() {
            return Err(TrainError::new("empty training subset"));
        }
        if x.nrows() != y.len() {
            return Err(TrainError::new("row/target count mismatch"));
        }
        if let Some(w) = weights {
            if w.len() != y.len() {
                return Err(TrainError::new("weight count mismatch"));
            }
        }
        self.nodes.clear();
        let mut idx = indices.to_vec();
        let mut rng = self.config.seed ^ 0xD1CE_0000_7EE0_0001;
        let n = idx.len();
        self.build(x, y, weights, &mut idx, 0, n, 0, &mut rng);
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        &mut self,
        x: &Matrix,
        y: &[f64],
        weights: Option<&[f64]>,
        idx: &mut Vec<usize>,
        lo: usize,
        hi: usize,
        depth: usize,
        rng: &mut u64,
    ) -> usize {
        let wsum: f64 = idx[lo..hi]
            .iter()
            .map(|&i| weights.map_or(1.0, |w| w[i]))
            .sum();
        let mean: f64 = idx[lo..hi]
            .iter()
            .map(|&i| weights.map_or(1.0, |w| w[i]) * y[i])
            .sum::<f64>()
            / wsum;
        let count = hi - lo;
        if depth >= self.config.max_depth || count < self.config.min_samples_split {
            self.nodes.push(Node::Leaf(mean));
            return self.nodes.len() - 1;
        }
        let Some((feature, threshold)) = self.best_split(x, y, weights, &idx[lo..hi], rng) else {
            self.nodes.push(Node::Leaf(mean));
            return self.nodes.len() - 1;
        };
        // Partition idx[lo..hi] in place.
        let mut mid = lo;
        for i in lo..hi {
            if x.get(idx[i], feature) <= threshold {
                idx.swap(i, mid);
                mid += 1;
            }
        }
        if mid == lo || mid == hi {
            self.nodes.push(Node::Leaf(mean));
            return self.nodes.len() - 1;
        }
        let me = self.nodes.len();
        self.nodes.push(Node::Leaf(0.0)); // placeholder
        let left = self.build(x, y, weights, idx, lo, mid, depth + 1, rng);
        let right = self.build(x, y, weights, idx, mid, hi, depth + 1, rng);
        self.nodes[me] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        me
    }

    /// Finds the (feature, threshold) with the best weighted-variance
    /// reduction, or `None` if no valid split exists.
    fn best_split(
        &self,
        x: &Matrix,
        y: &[f64],
        weights: Option<&[f64]>,
        idx: &[usize],
        rng: &mut u64,
    ) -> Option<(usize, f64)> {
        let d = x.ncols();
        let n_feats = self.config.max_features.unwrap_or(d).min(d).max(1);
        let mut features: Vec<usize> = (0..d).collect();
        if n_feats < d {
            // partial Fisher-Yates
            for i in 0..n_feats {
                *rng = rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = *rng;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z ^= z >> 27;
                let j = i + (z % (d - i) as u64) as usize;
                features.swap(i, j);
            }
            features.truncate(n_feats);
        }

        let mut best: Option<(usize, f64, f64)> = None; // (feat, thr, score)
        let mut order: Vec<usize> = idx.to_vec();
        for &f in &features {
            order.sort_unstable_by(|&a, &b| {
                x.get(a, f)
                    .partial_cmp(&x.get(b, f))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            // prefix scans of weighted sums
            let total_w: f64 = order.iter().map(|&i| weights.map_or(1.0, |w| w[i])).sum();
            let total_wy: f64 = order
                .iter()
                .map(|&i| weights.map_or(1.0, |w| w[i]) * y[i])
                .sum();
            let mut wl = 0.0;
            let mut wyl = 0.0;
            for pos in 0..order.len() - 1 {
                let i = order[pos];
                let w = weights.map_or(1.0, |wt| wt[i]);
                wl += w;
                wyl += w * y[i];
                let left_count = pos + 1;
                let right_count = order.len() - left_count;
                if left_count < self.config.min_samples_leaf
                    || right_count < self.config.min_samples_leaf
                {
                    continue;
                }
                let xv = x.get(i, f);
                let xn = x.get(order[pos + 1], f);
                if xn <= xv {
                    continue; // no threshold separates equal values
                }
                let wr = total_w - wl;
                if wl <= 0.0 || wr <= 0.0 {
                    continue;
                }
                let wyr = total_wy - wyl;
                // score = between-group sum of squares (higher is better)
                let score = wyl * wyl / wl + wyr * wyr / wr;
                if best.is_none_or(|(_, _, s)| score > s) {
                    best = Some((f, (xv + xn) * 0.5, score));
                }
            }
        }
        best.map(|(f, t, _)| (f, t))
    }

    /// Number of nodes in the fitted tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The tree's hyper-parameters.
    pub fn config(&self) -> TreeConfig {
        self.config
    }

    /// Exports the fitted nodes as their flat serializable view.
    pub fn export_nodes(&self) -> Vec<NodeRepr> {
        self.nodes
            .iter()
            .map(|n| match n {
                Node::Leaf(v) => NodeRepr::Leaf { value: *v },
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => NodeRepr::Split {
                    feature: *feature as u32,
                    threshold: *threshold,
                    left: *left as u32,
                    right: *right as u32,
                },
            })
            .collect()
    }

    /// Rebuilds a fitted tree from exported nodes.
    ///
    /// # Errors
    /// Returns [`TrainError`] when a split references a child index
    /// outside the node vector (prediction would panic otherwise).
    pub fn from_nodes(config: TreeConfig, nodes: &[NodeRepr]) -> Result<Self, TrainError> {
        let n = nodes.len();
        let nodes: Vec<Node> = nodes
            .iter()
            .map(|r| match *r {
                NodeRepr::Leaf { value } => Ok(Node::Leaf(value)),
                NodeRepr::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    if left as usize >= n || right as usize >= n {
                        return Err(TrainError::new("tree node child out of range"));
                    }
                    Ok(Node::Split {
                        feature: feature as usize,
                        threshold,
                        left: left as usize,
                        right: right as usize,
                    })
                }
            })
            .collect::<Result<_, _>>()?;
        Ok(DecisionTree { config, nodes })
    }
}

impl Regressor for DecisionTree {
    fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<(), TrainError> {
        let idx: Vec<usize> = (0..x.nrows()).collect();
        self.fit_subset(x, y, &idx, None)
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf(v) => return *v,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xy_step() -> (Matrix, Vec<f64>) {
        // y = 10 if x0 > 0.5 else 2
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 39.0, 0.0]).collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] > 0.5 { 10.0 } else { 2.0 })
            .collect();
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn learns_step_function() {
        let (x, y) = xy_step();
        let mut t = DecisionTree::new(TreeConfig::default());
        t.fit(&x, &y).unwrap();
        assert_eq!(t.predict_row(&[0.1, 0.0]), 2.0);
        assert_eq!(t.predict_row(&[0.9, 0.0]), 10.0);
    }

    #[test]
    fn depth_zero_is_mean() {
        let (x, y) = xy_step();
        let mut t = DecisionTree::new(TreeConfig {
            max_depth: 0,
            ..Default::default()
        });
        t.fit(&x, &y).unwrap();
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        assert!((t.predict_row(&[0.3, 0.0]) - mean).abs() < 1e-12);
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn weighted_fit_biases_leaf_means() {
        let x = Matrix::from_rows(&[vec![0.0], vec![0.0], vec![0.0]]);
        let y = [0.0, 0.0, 9.0];
        let idx = [0usize, 1, 2];
        let mut t = DecisionTree::new(TreeConfig {
            max_depth: 0,
            ..Default::default()
        });
        t.fit_subset(&x, &y, &idx, Some(&[1.0, 1.0, 1.0])).unwrap();
        assert!((t.predict_row(&[0.0]) - 3.0).abs() < 1e-12);
        t.fit_subset(&x, &y, &idx, Some(&[0.0, 0.0, 1.0])).unwrap();
        assert!((t.predict_row(&[0.0]) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_fit_on_training_data_at_full_depth() {
        // Distinct x values: a deep tree must memorize the target.
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..50).map(|i| ((i * 37) % 11) as f64).collect();
        let x = Matrix::from_rows(&rows);
        let mut t = DecisionTree::new(TreeConfig::default());
        t.fit(&x, &y).unwrap();
        for (r, &target) in rows.iter().zip(y.iter()) {
            assert_eq!(t.predict_row(r), target);
        }
    }

    #[test]
    fn empty_subset_is_error() {
        let x = Matrix::from_rows(&[vec![1.0]]);
        let mut t = DecisionTree::new(TreeConfig::default());
        assert!(t.fit_subset(&x, &[1.0], &[], None).is_err());
    }

    #[test]
    fn two_feature_interaction() {
        // y = x0 XOR x1 (as 0/1) — needs depth 2.
        let rows = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let y = [0.0, 1.0, 1.0, 0.0];
        let x = Matrix::from_rows(&rows);
        let mut t = DecisionTree::new(TreeConfig::default());
        t.fit(&x, &y).unwrap();
        for (r, &target) in rows.iter().zip(y.iter()) {
            assert_eq!(t.predict_row(r), target, "row {r:?}");
        }
    }
}
