//! Deterministic synthetic classification data for the NN workload.
//!
//! No network access, no external files: the generator draws well
//! separated Gaussian-blob-style clusters directly in the quantized `u8`
//! feature space from a seeded RNG, so the same [`DatasetConfig`] always
//! produces the same byte-identical samples — the property the Step-1/2
//! content-addressed cache and the determinism tests rely on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One labelled sample: a quantized feature vector and its class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NnSample {
    /// Quantized input features (u8 activations).
    pub features: Vec<u8>,
    /// Ground-truth class index.
    pub label: u8,
}

/// Shape and randomness of a synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetConfig {
    /// Input feature count (the MLP's input width).
    pub features: usize,
    /// Number of classes.
    pub classes: usize,
    /// Samples generated per class.
    pub per_class: usize,
    /// Half-width of the triangular per-feature noise around each class
    /// center (larger = harder dataset).
    pub noise: u8,
    /// Generator seed.
    pub seed: u64,
}

impl DatasetConfig {
    /// Smoke-test size: 16 features, 4 classes, 96 samples.
    pub fn tiny() -> Self {
        DatasetConfig {
            features: 16,
            classes: 4,
            per_class: 24,
            noise: 12,
            seed: 2019,
        }
    }

    /// Laptop size: 32 features, 6 classes, 360 samples.
    pub fn default_scale() -> Self {
        DatasetConfig {
            features: 32,
            classes: 6,
            per_class: 60,
            noise: 14,
            seed: 2019,
        }
    }

    /// Total sample count.
    pub fn len(&self) -> usize {
        self.classes * self.per_class
    }

    /// True for a zero-sample configuration.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Generates the dataset: one distinct binary-corner center per class
/// (coordinates in {48, 208}), samples drawn around it with triangular
/// noise and clamped to the `u8` range, interleaved round-robin over the
/// classes so every prefix is class-balanced.
///
/// # Panics
/// Panics if the configuration asks for more distinct classes than the
/// corner space can host.
pub fn synthetic_blobs(cfg: &DatasetConfig) -> Vec<NnSample> {
    assert!(cfg.features > 0, "dataset needs at least one feature");
    assert!(
        (cfg.classes as u128) <= 1u128 << cfg.features.min(64),
        "more classes than distinct centers"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut centers: Vec<Vec<u8>> = Vec::with_capacity(cfg.classes);
    while centers.len() < cfg.classes {
        let c: Vec<u8> = (0..cfg.features)
            .map(|_| if rng.gen_bool(0.5) { 208 } else { 48 })
            .collect();
        if !centers.contains(&c) {
            centers.push(c);
        }
    }
    let n = 2 * cfg.noise as i32;
    let mut out = Vec::with_capacity(cfg.len());
    for _ in 0..cfg.per_class {
        for (label, center) in centers.iter().enumerate() {
            let features = center
                .iter()
                .map(|&c| {
                    // triangular noise in [-2*noise, 2*noise], mean 0
                    let d = rng.gen_range(0..=n) + rng.gen_range(0..=n) - n;
                    (c as i32 + d).clamp(0, 255) as u8
                })
                .collect();
            out.push(NnSample {
                features,
                label: label as u8,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = DatasetConfig::tiny();
        let a = synthetic_blobs(&cfg);
        let b = synthetic_blobs(&cfg);
        assert_eq!(a, b, "same config must generate identical samples");
        assert_eq!(a.len(), cfg.len());
    }

    #[test]
    fn seed_changes_the_data() {
        let cfg = DatasetConfig::tiny();
        let other = DatasetConfig {
            seed: cfg.seed + 1,
            ..cfg
        };
        assert_ne!(synthetic_blobs(&cfg), synthetic_blobs(&other));
    }

    #[test]
    fn shapes_and_balance() {
        let cfg = DatasetConfig::tiny();
        let data = synthetic_blobs(&cfg);
        let mut counts = vec![0usize; cfg.classes];
        for s in &data {
            assert_eq!(s.features.len(), cfg.features);
            counts[s.label as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == cfg.per_class));
        // round-robin interleave: the first `classes` samples cover all
        // labels
        let head: Vec<u8> = data[..cfg.classes].iter().map(|s| s.label).collect();
        let mut sorted = head.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..cfg.classes as u8).collect::<Vec<_>>());
    }

    #[test]
    fn classes_stay_separated() {
        // with noise far below the 160-unit center gap, per-class feature
        // means must stay near their centers: the nearest class center of
        // each class mean is its own
        let cfg = DatasetConfig::tiny();
        let data = synthetic_blobs(&cfg);
        let mut means = vec![vec![0f64; cfg.features]; cfg.classes];
        for s in &data {
            for (m, &f) in means[s.label as usize].iter_mut().zip(&s.features) {
                *m += f as f64 / cfg.per_class as f64;
            }
        }
        for (a, ma) in means.iter().enumerate() {
            for (b, mb) in means.iter().enumerate() {
                if a != b {
                    let d: f64 = ma
                        .iter()
                        .zip(mb)
                        .map(|(x, y)| (x - y) * (x - y))
                        .sum::<f64>()
                        .sqrt();
                    assert!(d > 100.0, "classes {a} and {b} collapsed (dist {d:.1})");
                }
            }
        }
    }
}
