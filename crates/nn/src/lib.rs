//! # autoax-nn
//!
//! The second workload domain of the autoAx reproduction: an approximate
//! **DNN inference accelerator** with accuracy-based QoR, after "Using
//! Libraries of Approximate Circuits in Design of Hardware Accelerators
//! of Deep Neural Networks" (Mrazek et al., 2020).
//!
//! The crate provides:
//!
//! * [`dataset`] — a deterministic synthetic classification dataset
//!   generator (seeded Gaussian-blob clusters in `u8` feature space, no
//!   network access);
//! * [`qmlp`] — a hand-rolled quantized MLP (u8 activations × u8 weights
//!   with zero point 128) whose multiply-accumulates run through two
//!   replaceable circuit slots per layer: an 8×8 multiplier and a 16-bit
//!   accumulator adder ([`qmlp::mac_step`]);
//! * [`workload`] — the [`autoax_accel::Workload`] implementation
//!   ([`NnAccelerator`]): QoR is top-1 accuracy against the
//!   exact-arithmetic golden run, and `build_netlist` composes the
//!   per-layer MAC processing elements so synthesis-lite hardware cost
//!   and model-vs-real comparisons work unchanged.
//!
//! Because the pipeline is generic over [`autoax_accel::Workload`], the
//! complete three-step methodology — operand profiling, WMED library
//! pre-processing, model construction, model-based search, real
//! evaluation — runs on this workload with the *same* code that serves
//! the paper's image filters (see the `nn_dse` example).
//!
//! # Example
//!
//! ```
//! use autoax_accel::Workload;
//! use autoax_nn::NnScenario;
//!
//! let (accel, samples) = NnScenario::tiny().build();
//! assert_eq!(accel.slots().len(), 4); // 2 layers × (mul8 + add16)
//! let golden = accel.golden(&samples);
//! let q = accel.qor(&samples, &golden, &accel.exact_ops());
//! assert_eq!(q, 1.0); // the exact configuration is the golden run
//! ```

pub mod dataset;
pub mod qmlp;
pub mod workload;

pub use dataset::{synthetic_blobs, DatasetConfig, NnSample};
pub use qmlp::{fit_classifier, mac_step, QuantLayer, QuantMlp};
pub use workload::{NnAccelerator, NnScenario};
