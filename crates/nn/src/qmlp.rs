//! A hand-rolled quantized MLP over the approximate MAC datapath.
//!
//! Quantization scheme (the standard asymmetric u8 layout):
//!
//! * activations are `u8`;
//! * weights are `u8` with zero point 128, so the represented weight is
//!   `w - 128 ∈ [-128, 127]`;
//! * every multiply-accumulate runs through two replaceable circuit
//!   slots — an 8×8 multiplier forming the 16-bit product and a 16-bit
//!   adder updating the low lanes of the accumulator ([`mac_step`]);
//! * the zero-point correction `128 · Σx`, the bias add and the
//!   requantize shift are exact glue, exactly as the paper's accelerators
//!   keep their shifts and clamps exact.
//!
//! The carry out of the 16-bit adder propagates into the high accumulator
//! bits through exact glue, so with exact circuits the MAC is *bit-exact*
//! integer arithmetic (property-tested against native `Σ w·x` at every
//! paper bitwidth in `tests/cross_crate_props.rs`).

use autoax_accel::accelerator::{OpObserver, OpSet};
use autoax_ml::linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::NnSample;

/// Weight zero point: stored `u8` weight `w` represents `w - ZERO_POINT`.
pub const ZERO_POINT: i64 = 128;

/// One accumulate step of the MAC datapath.
///
/// The multiplier slot forms the 16-bit product `x·w`; the adder slot
/// adds it to the low 16 bits of `acc`; the 17-bit sum (carry included)
/// re-enters the accumulator through exact glue. With exact circuits this
/// is exactly `acc + x·w`.
#[inline]
pub fn mac_step(
    ops: &OpSet,
    mul_slot: usize,
    acc_slot: usize,
    acc: u64,
    x: u8,
    w: u8,
    obs: &mut dyn OpObserver,
) -> u64 {
    obs.record(mul_slot, x as u64, w as u64);
    let p = ops.apply(mul_slot, x as u64, w as u64) & 0xFFFF;
    let lo = acc & 0xFFFF;
    obs.record(acc_slot, lo, p);
    let s = ops.apply(acc_slot, lo, p) & 0x1_FFFF;
    (acc & !0xFFFF).wrapping_add(s)
}

/// One fully connected quantized layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantLayer {
    /// Input width.
    pub in_dim: usize,
    /// Output width (neuron count).
    pub out_dim: usize,
    /// Row-major `[out_dim × in_dim]` weights, zero point 128.
    pub weights: Vec<u8>,
    /// Per-neuron bias, applied after the zero-point correction.
    pub bias: Vec<i64>,
    /// Requantize right-shift for the (clamped) u8 activation.
    pub shift: u32,
}

impl QuantLayer {
    /// The signed pre-activations of the layer for input `x`, running
    /// every multiply-accumulate through `ops` (slots `mul_slot` /
    /// `acc_slot`) and reporting the operands to `obs`.
    ///
    /// The zero-point correction `128 · Σx` is computed once per input
    /// and shared by all neurons — exact glue, like the paper's wired
    /// shifts.
    pub fn forward_signed(
        &self,
        x: &[u8],
        ops: &OpSet,
        mul_slot: usize,
        acc_slot: usize,
        obs: &mut dyn OpObserver,
    ) -> Vec<i64> {
        assert_eq!(x.len(), self.in_dim, "input width mismatch");
        let sum_x: i64 = x.iter().map(|&v| v as i64).sum();
        (0..self.out_dim)
            .map(|j| {
                let row = &self.weights[j * self.in_dim..(j + 1) * self.in_dim];
                let mut acc = 0u64;
                for (&xi, &w) in x.iter().zip(row.iter()) {
                    acc = mac_step(ops, mul_slot, acc_slot, acc, xi, w, obs);
                }
                acc as i64 - ZERO_POINT * sum_x + self.bias[j]
            })
            .collect()
    }

    /// Requantizes a signed pre-activation to the u8 activation range.
    #[inline]
    pub fn requantize(&self, v: i64) -> u8 {
        (v >> self.shift).clamp(0, 255) as u8
    }
}

/// A quantized multi-layer perceptron; the last layer's signed outputs
/// are the class logits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantMlp {
    /// The layers, first to last. Layer `l` owns slots `2l` (multiplier)
    /// and `2l + 1` (accumulator adder).
    pub layers: Vec<QuantLayer>,
}

impl QuantMlp {
    /// Class logits of input `x` through `ops`.
    pub fn logits(&self, x: &[u8], ops: &OpSet, obs: &mut dyn OpObserver) -> Vec<i64> {
        assert!(!self.layers.is_empty(), "QuantMlp needs at least one layer");
        let last = self.layers.len() - 1;
        let mut act: Vec<u8> = x.to_vec();
        for (l, layer) in self.layers.iter().enumerate() {
            let signed = layer.forward_signed(&act, ops, 2 * l, 2 * l + 1, obs);
            if l == last {
                return signed;
            }
            act = signed.iter().map(|&v| layer.requantize(v)).collect();
        }
        unreachable!("loop returns on the last layer")
    }

    /// Predicted class: argmax of the logits (ties resolve to the lowest
    /// index, deterministically).
    pub fn predict(&self, x: &[u8], ops: &OpSet, obs: &mut dyn OpObserver) -> u8 {
        let logits = self.logits(x, ops, obs);
        let mut best = 0usize;
        for (i, &v) in logits.iter().enumerate() {
            if v > logits[best] {
                best = i;
            }
        }
        best as u8
    }

    /// Input feature count.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim
    }

    /// Class count.
    pub fn class_count(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim
    }
}

/// Builds a two-layer classifier on a labelled dataset, deterministically:
///
/// 1. the hidden layer is a seeded random projection (weights uniform
///    around the zero point), calibrated on the data so each neuron's
///    activation span maps onto `[0, 255]` (per-neuron bias = −min,
///    shared requantize shift covering the largest span);
/// 2. the output layer is a nearest-centroid readout in hidden-activation
///    space: weights are the quantized class-centroid deviations from the
///    global mean, biases the matching `−½‖w‖·centroid` terms, so the
///    argmax picks the class whose centroid the activation correlates
///    with best.
///
/// No floating-point training loop, no external data — but a genuinely
/// discriminative network whose exact run separates the synthetic blobs,
/// so approximating its multipliers and adders trades real accuracy.
pub fn fit_classifier(data: &[NnSample], classes: usize, hidden: usize, seed: u64) -> QuantMlp {
    assert!(!data.is_empty(), "fit needs data");
    assert!(classes >= 2, "fit needs at least two classes");
    let in_dim = data[0].features.len();
    let mut rng = StdRng::seed_from_u64(seed);

    // 1. random-projection hidden layer
    let weights: Vec<u8> = (0..hidden * in_dim)
        .map(|_| rng.gen_range(88u32..=168) as u8)
        .collect();
    let mut l1 = QuantLayer {
        in_dim,
        out_dim: hidden,
        weights,
        bias: vec![0; hidden],
        shift: 0,
    };
    // calibrate: one pass computing every exact (native-integer) raw
    // pre-activation — reused below for the activation matrix, so the
    // O(samples × hidden × in_dim) dot products run exactly once
    let mut raws: Vec<i64> = Vec::with_capacity(data.len() * hidden);
    let mut lo = vec![i64::MAX; hidden];
    let mut hi = vec![i64::MIN; hidden];
    for s in data {
        for j in 0..hidden {
            let row = &l1.weights[j * in_dim..(j + 1) * in_dim];
            let raw: i64 = s
                .features
                .iter()
                .zip(row)
                .map(|(&x, &w)| (w as i64 - ZERO_POINT) * x as i64)
                .sum();
            lo[j] = lo[j].min(raw);
            hi[j] = hi[j].max(raw);
            raws.push(raw);
        }
    }
    let span = lo
        .iter()
        .zip(&hi)
        .map(|(&l, &h)| h - l)
        .max()
        .unwrap_or(0)
        .max(1);
    let mut shift = 0u32;
    while (span >> shift) > 255 {
        shift += 1;
    }
    l1.bias = lo.iter().map(|&l| -l).collect();
    l1.shift = shift;

    // 2. nearest-centroid readout on the exact hidden activations
    // (requantized from the cached raw pre-activations)
    let mut acts = Matrix::zeros(data.len(), hidden);
    for (r, chunk) in raws.chunks(hidden).enumerate() {
        for (j, &raw) in chunk.iter().enumerate() {
            acts.set(r, j, l1.requantize(raw + l1.bias[j]) as f64);
        }
    }
    let mut centroid = vec![vec![0f64; hidden]; classes];
    let mut count = vec![0usize; classes];
    for (r, s) in data.iter().enumerate() {
        count[s.label as usize] += 1;
        for (j, c) in centroid[s.label as usize].iter_mut().enumerate() {
            *c += acts.get(r, j);
        }
    }
    for (c, n) in centroid.iter_mut().zip(&count) {
        assert!(*n > 0, "every class needs at least one sample");
        for v in c.iter_mut() {
            *v /= *n as f64;
        }
    }
    let mean: Vec<f64> = (0..hidden)
        .map(|j| centroid.iter().map(|c| c[j]).sum::<f64>() / classes as f64)
        .collect();
    let max_dev = centroid
        .iter()
        .flat_map(|c| c.iter().zip(&mean).map(|(v, m)| (v - m).abs()))
        .fold(0f64, f64::max)
        .max(1e-9);
    let scale = 100.0 / max_dev;
    let mut w2 = Vec::with_capacity(classes * hidden);
    let mut b2 = Vec::with_capacity(classes);
    for c in &centroid {
        let row: Vec<i64> = c
            .iter()
            .zip(&mean)
            .map(|(v, m)| (scale * (v - m)).round() as i64)
            .collect();
        // −½ Σ w·centroid makes the argmax a nearest-centroid rule
        let bias: f64 = -row.iter().zip(c).map(|(&w, &v)| w as f64 * v).sum::<f64>() / 2.0;
        for &w in &row {
            w2.push((w + ZERO_POINT).clamp(0, 255) as u8);
        }
        b2.push(bias.round() as i64);
    }
    let l2 = QuantLayer {
        in_dim: hidden,
        out_dim: classes,
        weights: w2,
        bias: b2,
        shift: 0,
    };
    QuantMlp {
        layers: vec![l1, l2],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{synthetic_blobs, DatasetConfig};
    use autoax_accel::accelerator::{CompiledOp, NoRecord, OpSlot};
    use autoax_circuit::OpSignature;

    fn exact_ops(layers: usize) -> OpSet {
        let slots: Vec<OpSlot> = (0..layers)
            .flat_map(|l| {
                [
                    OpSlot::new(format!("l{l}_mul"), OpSignature::MUL8),
                    OpSlot::new(format!("l{l}_acc"), OpSignature::ADD16),
                ]
            })
            .collect();
        OpSet::exact_slots(&slots)
    }

    #[test]
    fn exact_mac_equals_native_dot_product() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let ops = exact_ops(1);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let n = rng.gen_range(1usize..40);
            let xs: Vec<u8> = (0..n).map(|_| rng.gen_range(0u32..=255) as u8).collect();
            let ws: Vec<u8> = (0..n).map(|_| rng.gen_range(0u32..=255) as u8).collect();
            let mut acc = 0u64;
            for (&x, &w) in xs.iter().zip(&ws) {
                acc = mac_step(&ops, 0, 1, acc, x, w, &mut NoRecord);
            }
            let native: u64 = xs.iter().zip(&ws).map(|(&x, &w)| x as u64 * w as u64).sum();
            assert_eq!(acc, native);
        }
    }

    #[test]
    fn fit_is_deterministic_and_classifies_the_blobs() {
        let cfg = DatasetConfig::tiny();
        let data = synthetic_blobs(&cfg);
        let a = fit_classifier(&data, cfg.classes, 12, 7);
        let b = fit_classifier(&data, cfg.classes, 12, 7);
        assert_eq!(a, b, "fit must be deterministic");
        let ops = exact_ops(a.layers.len());
        let correct = data
            .iter()
            .filter(|s| a.predict(&s.features, &ops, &mut NoRecord) == s.label)
            .count();
        let acc = correct as f64 / data.len() as f64;
        assert!(acc > 0.9, "exact net should separate the blobs: {acc}");
    }

    #[test]
    fn zeroed_multiplier_collapses_the_logits() {
        // an all-zero multiplier LUT must change predictions/logits: the
        // MAC path really flows through the slot circuits
        use std::sync::Arc;
        let cfg = DatasetConfig::tiny();
        let data = synthetic_blobs(&cfg);
        let mlp = fit_classifier(&data, cfg.classes, 8, 3);
        let exact = exact_ops(mlp.layers.len());
        let zero_mul = CompiledOp::Lut {
            wa: 8,
            table: Arc::new(vec![0u16; 1 << 16]),
        };
        let broken = OpSet::new(vec![
            zero_mul.clone(),
            CompiledOp::Exact(OpSignature::ADD16),
            zero_mul,
            CompiledOp::Exact(OpSignature::ADD16),
        ]);
        let x = &data[0].features;
        let le = mlp.logits(x, &exact, &mut NoRecord);
        let lb = mlp.logits(x, &broken, &mut NoRecord);
        assert_ne!(le, lb, "zeroed multipliers must perturb the logits");
    }

    #[test]
    fn requantize_clamps_to_u8() {
        let l = QuantLayer {
            in_dim: 1,
            out_dim: 1,
            weights: vec![128],
            bias: vec![0],
            shift: 2,
        };
        assert_eq!(l.requantize(-5), 0);
        assert_eq!(l.requantize(40), 10);
        assert_eq!(l.requantize(100_000), 255);
    }

    #[test]
    fn predict_breaks_ties_to_the_lowest_index() {
        // a single-layer net with two identical rows produces equal
        // logits; argmax must deterministically pick class 0
        let mlp = QuantMlp {
            layers: vec![QuantLayer {
                in_dim: 2,
                out_dim: 2,
                weights: vec![130, 140, 130, 140],
                bias: vec![0, 0],
                shift: 0,
            }],
        };
        let ops = exact_ops(1);
        assert_eq!(mlp.predict(&[10, 20], &ops, &mut NoRecord), 0);
    }
}
