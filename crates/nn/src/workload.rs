//! The [`Workload`] implementation: a quantized-MLP inference accelerator
//! whose per-layer MAC units draw from the approximate multiplier and
//! adder library, with top-1 accuracy against the exact-arithmetic golden
//! run as the QoR measure — the flow of "Using Libraries of Approximate
//! Circuits in Design of Hardware Accelerators of Deep Neural Networks"
//! (Mrazek et al., 2020) on top of the autoAx pipeline.

use autoax_accel::accelerator::{NoRecord, OpSet, OpSlot};
use autoax_accel::{Pmf, PmfRecorder, Workload};
use autoax_circuit::netlist::{Bus, Netlist};
use autoax_circuit::OpSignature;

use crate::dataset::{synthetic_blobs, DatasetConfig, NnSample};
use crate::qmlp::{fit_classifier, QuantMlp};

/// A quantized-MLP inference accelerator over replaceable MAC slots.
///
/// Each layer is served by one time-multiplexed MAC unit with two
/// replaceable circuits: the 8×8 multiplier (`l{i}_mul`, class `mul8`)
/// and the 16-bit accumulator adder (`l{i}_acc`, class `add16`). The
/// zero-point correction, bias add, requantize shift and argmax are
/// exact glue — only the listed arithmetic is approximated, exactly as in
/// the paper's accelerators.
#[derive(Debug, Clone)]
pub struct NnAccelerator {
    name: String,
    mlp: QuantMlp,
    slots: Vec<OpSlot>,
}

impl NnAccelerator {
    /// Wraps a quantized network as an accelerator workload.
    pub fn new(name: impl Into<String>, mlp: QuantMlp) -> Self {
        let slots = (0..mlp.layers.len())
            .flat_map(|l| {
                [
                    OpSlot::new(format!("l{l}_mul"), OpSignature::MUL8),
                    OpSlot::new(format!("l{l}_acc"), OpSignature::ADD16),
                ]
            })
            .collect();
        NnAccelerator {
            name: name.into(),
            mlp,
            slots,
        }
    }

    /// The wrapped network.
    pub fn mlp(&self) -> &QuantMlp {
        &self.mlp
    }

    /// The all-exact op set for this workload's slots.
    pub fn exact_ops(&self) -> OpSet {
        OpSet::exact_slots(&self.slots)
    }

    /// True accuracy of the *exact* network against the dataset labels
    /// (reporting only — the pipeline's QoR is accuracy against the
    /// exact-run predictions, so the exact configuration scores 1.0).
    pub fn exact_label_accuracy(&self, samples: &[NnSample]) -> f64 {
        assert!(!samples.is_empty(), "need at least one sample");
        let exact = self.exact_ops();
        let hits = samples
            .iter()
            .filter(|s| self.mlp.predict(&s.features, &exact, &mut NoRecord) == s.label)
            .count();
        hits as f64 / samples.len() as f64
    }
}

impl Workload for NnAccelerator {
    type Sample = NnSample;
    /// The exact network's predicted class of one sample.
    type Golden = u8;

    fn name(&self) -> &str {
        &self.name
    }

    fn slots(&self) -> &[OpSlot] {
        &self.slots
    }

    fn qor_metric(&self) -> &'static str {
        "top-1 accuracy"
    }

    fn profile(&self, samples: &[NnSample]) -> Vec<Pmf> {
        let exact = self.exact_ops();
        // one exact forward pass per sample; per-sample PMFs merge
        // commutatively through the execution layer's fixed-association
        // map-reduce, so the result is thread-count invariant
        autoax_exec::map_reduce(
            samples,
            |s| {
                let mut rec = PmfRecorder::new(self.slots.len());
                let _ = self.mlp.predict(&s.features, &exact, &mut rec);
                rec.into_pmfs()
            },
            |mut acc, next| {
                for (a, b) in acc.iter_mut().zip(next) {
                    a.absorb(b);
                }
                acc
            },
        )
        .unwrap_or_else(|| (0..self.slots.len()).map(|_| Pmf::new()).collect())
    }

    fn golden(&self, samples: &[NnSample]) -> Vec<u8> {
        let exact = self.exact_ops();
        autoax_exec::par_map_coarse(samples, |s| {
            self.mlp.predict(&s.features, &exact, &mut NoRecord)
        })
    }

    fn qor(&self, samples: &[NnSample], golden: &[u8], ops: &OpSet) -> f64 {
        assert_eq!(samples.len(), golden.len(), "golden shape mismatch");
        assert!(!samples.is_empty(), "qor needs at least one sample");
        // deliberately sequential: runs under the parallel evaluate_batch
        let hits = samples
            .iter()
            .zip(golden)
            .filter(|(s, &g)| self.mlp.predict(&s.features, ops, &mut NoRecord) == g)
            .count();
        hits as f64 / samples.len() as f64
    }

    fn build_netlist(&self, impls: &[Netlist]) -> Netlist {
        assert_eq!(impls.len(), self.slots.len(), "one netlist per slot");
        let mut top = Netlist::new("nn_mac_array");
        let cat = |a: &Bus, b: &Bus| -> Vec<autoax_circuit::NetId> {
            a.iter().chain(b.iter()).copied().collect()
        };
        // one MAC processing element per layer: product = mul(x, w),
        // new_acc_lo = add16(acc_lo, product) with the carry in bit 16
        // (all primary inputs first — net ids must precede the gates)
        let pe_inputs: Vec<(Bus, Bus, Bus)> = (0..self.mlp.layers.len())
            .map(|_| (top.input_bus(8), top.input_bus(8), top.input_bus(16)))
            .collect();
        for (l, (x, w, acc)) in pe_inputs.iter().enumerate() {
            let p = Bus(top.instantiate(&impls[2 * l], &cat(x, w)));
            let s = Bus(top.instantiate(&impls[2 * l + 1], &cat(acc, &p)));
            top.push_output_bus(&s);
        }
        top
    }

    fn digest_samples(&self, samples: &[NnSample], sink: &mut dyn FnMut(&[u8])) {
        for s in samples {
            sink(&(s.features.len() as u64).to_le_bytes());
            sink(&s.features);
            sink(&[s.label]);
        }
    }

    fn digest_identity(&self, sink: &mut dyn FnMut(&[u8])) {
        // the network *is* workload identity: same name + slots with
        // different weights must never alias a cache entry
        sink(&(self.mlp.layers.len() as u64).to_le_bytes());
        for layer in &self.mlp.layers {
            sink(&(layer.in_dim as u64).to_le_bytes());
            sink(&(layer.out_dim as u64).to_le_bytes());
            sink(&layer.weights);
            for &b in &layer.bias {
                sink(&b.to_le_bytes());
            }
            sink(&layer.shift.to_le_bytes());
        }
    }
}

/// A complete, reproducible NN scenario: dataset shape + network shape.
#[derive(Debug, Clone, Copy)]
pub struct NnScenario {
    /// Synthetic dataset configuration.
    pub dataset: DatasetConfig,
    /// Hidden layer width.
    pub hidden: usize,
    /// Network initialization seed.
    pub seed: u64,
}

impl NnScenario {
    /// Smoke-test scenario (16→12→4 network, 96 samples).
    pub fn tiny() -> Self {
        NnScenario {
            dataset: DatasetConfig::tiny(),
            hidden: 12,
            seed: 7,
        }
    }

    /// Laptop scenario (32→20→6 network, 360 samples).
    pub fn default_scale() -> Self {
        NnScenario {
            dataset: DatasetConfig::default_scale(),
            hidden: 20,
            seed: 7,
        }
    }

    /// Generates the dataset and fits the workload on it.
    pub fn build(&self) -> (NnAccelerator, Vec<NnSample>) {
        let data = synthetic_blobs(&self.dataset);
        let mlp = fit_classifier(&data, self.dataset.classes, self.hidden, self.seed);
        (NnAccelerator::new("Quantized MLP", mlp), data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoax_accel::accelerator::CompiledOp;
    use autoax_circuit::approx::Behavior;
    use autoax_circuit::sim::sim_lanes;
    use std::sync::Arc;

    fn tiny() -> (NnAccelerator, Vec<NnSample>) {
        NnScenario::tiny().build()
    }

    #[test]
    fn slot_inventory_is_one_mac_per_layer() {
        let (accel, _) = tiny();
        let slots = accel.slots();
        assert_eq!(slots.len(), 4);
        assert_eq!(slots[0].signature, OpSignature::MUL8);
        assert_eq!(slots[1].signature, OpSignature::ADD16);
        assert_eq!(slots[2].signature, OpSignature::MUL8);
        assert_eq!(slots[3].signature, OpSignature::ADD16);
    }

    #[test]
    fn exact_configuration_scores_accuracy_one() {
        let (accel, data) = tiny();
        let golden = accel.golden(&data);
        let q = accel.qor(&data, &golden, &accel.exact_ops());
        assert_eq!(q, 1.0, "QoR is match-vs-golden: exact must be perfect");
        // and the exact net genuinely solves the synthetic task
        assert!(accel.exact_label_accuracy(&data) > 0.9);
    }

    #[test]
    fn zeroed_multipliers_hurt_accuracy() {
        let (accel, data) = tiny();
        let golden = accel.golden(&data);
        let zero_mul = CompiledOp::Lut {
            wa: 8,
            table: Arc::new(vec![0u16; 1 << 16]),
        };
        let broken = OpSet::new(vec![
            zero_mul.clone(),
            CompiledOp::Exact(OpSignature::ADD16),
            zero_mul,
            CompiledOp::Exact(OpSignature::ADD16),
        ]);
        let q = accel.qor(&data, &golden, &broken);
        assert!(q < 1.0, "all-zero products must lose accuracy: {q}");
        assert!((0.0..=1.0).contains(&q));
    }

    #[test]
    fn profiling_fills_every_slot() {
        let (accel, data) = tiny();
        let pmfs = accel.profile(&data);
        assert_eq!(pmfs.len(), 4);
        for (pmf, slot) in pmfs.iter().zip(accel.slots()) {
            assert!(pmf.total() > 0, "slot {} never profiled", slot.name);
        }
        // layer-1 MAC count: samples × hidden × features
        assert_eq!(
            pmfs[0].total(),
            (data.len() * accel.mlp().layers[0].out_dim * accel.mlp().layers[0].in_dim) as u64
        );
    }

    #[test]
    fn netlist_mac_matches_software_semantics() {
        // drive the composed MAC array with exact component netlists and
        // compare each layer's PE against the software mac_step contract:
        // out = add16(acc_lo, mul(x, w))
        let (accel, _) = tiny();
        let impls: Vec<Netlist> = accel
            .slots()
            .iter()
            .map(|s| Behavior::exact_for(s.signature).build_netlist())
            .collect();
        let top = accel.build_netlist(&impls);
        assert_eq!(top.input_count(), 2 * (8 + 8 + 16));
        assert_eq!(top.outputs().len(), 2 * 17);
        let mut st = 5u64;
        for _ in 0..100 {
            let x = (autoax_circuit::util::splitmix64(&mut st) & 0xFF) as u64;
            let w = (autoax_circuit::util::splitmix64(&mut st) & 0xFF) as u64;
            let acc = (autoax_circuit::util::splitmix64(&mut st) & 0xFFFF) as u64;
            // pack both layers with the same operands
            let mut bits = Vec::new();
            for _ in 0..2 {
                for i in 0..8 {
                    bits.push((x >> i) & 1);
                }
                for i in 0..8 {
                    bits.push((w >> i) & 1);
                }
                for i in 0..16 {
                    bits.push((acc >> i) & 1);
                }
            }
            let words: Vec<u64> = bits
                .iter()
                .map(|&b| if b != 0 { u64::MAX } else { 0 })
                .collect();
            let outs = sim_lanes(&top, &words);
            let expect = acc + x * w; // ≤ 2^17 − 1: exact in 17 bits
            for layer in 0..2 {
                let got = (0..17).fold(0u64, |a, i| a | ((outs[17 * layer + i] & 1) << i));
                assert_eq!(got, expect, "layer {layer}: x={x} w={w} acc={acc}");
            }
        }
    }

    #[test]
    fn identity_digest_tracks_the_weights() {
        let (a, data) = tiny();
        let mut other_mlp = a.mlp().clone();
        other_mlp.layers[0].weights[0] ^= 1;
        let b = NnAccelerator::new("Quantized MLP", other_mlp);
        let collect = |acc: &NnAccelerator| {
            let mut out = Vec::new();
            let mut sink = |bytes: &[u8]| out.extend_from_slice(bytes);
            acc.digest_identity(&mut sink);
            out
        };
        assert_ne!(collect(&a), collect(&b), "weight flip must change identity");
        let mut da = Vec::new();
        let mut sink = |bytes: &[u8]| da.extend_from_slice(bytes);
        a.digest_samples(&data, &mut sink);
        assert!(!da.is_empty());
    }

    #[test]
    fn scenario_build_is_deterministic() {
        let (a, da) = tiny();
        let (b, db) = tiny();
        assert_eq!(da, db);
        assert_eq!(a.mlp(), b.mlp());
    }
}
