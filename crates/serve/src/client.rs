//! A minimal blocking client for the service's one-request-per-connection
//! protocol — what the demo example, the concurrency tests and the CI
//! smoke job speak through.

use crate::json::Json;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// A parsed response: status line plus the NDJSON body, one [`Json`]
/// value per line (single-object bodies are a one-element vector).
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Lower-cased response header names with trimmed values, in
    /// arrival order.
    pub headers: Vec<(String, String)>,
    /// Body lines that parsed as JSON, in stream order.
    pub lines: Vec<Json>,
}

impl Response {
    /// First response header value under `name` (matched
    /// case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The `front_digest` from a job stream's `done` trailer, if any.
    pub fn front_digest(&self) -> Option<&str> {
        self.event("done")?.get("front_digest")?.as_str()
    }

    /// How the job was served (`computed` / `deduped` / `cached`), from
    /// the `accepted` event.
    pub fn served(&self) -> Option<&str> {
        self.event("accepted")?.get("served")?.as_str()
    }

    /// The first line whose `event` field equals `name`.
    pub fn event(&self, name: &str) -> Option<&Json> {
        self.lines
            .iter()
            .find(|l| l.get("event").and_then(Json::as_str) == Some(name))
    }

    /// The `error` message of a non-2xx response, if present.
    pub fn error(&self) -> Option<&str> {
        self.lines.first()?.get("error")?.as_str()
    }
}

/// Sends one request and reads the whole response (the server closes
/// the connection after it).
///
/// # Errors
/// Connection/IO failures and malformed status lines.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<&Json>,
) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    send_head_and_body(
        &mut stream,
        method,
        path,
        headers,
        body.map(|b| b.to_string().into_bytes()).as_deref(),
    )?;
    read_response(stream)
}

/// Submits a job descriptor; `tenant` rides in the `x-tenant` header.
///
/// # Errors
/// As for [`request`].
pub fn submit_job(addr: SocketAddr, tenant: &str, job: &Json) -> io::Result<Response> {
    request(addr, "POST", "/jobs", &[("x-tenant", tenant)], Some(job))
}

fn send_head_and_body(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<&[u8]>,
) -> io::Result<()> {
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: autoax\r\nConnection: close\r\n");
    for (k, v) in headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    if let Some(body) = body {
        head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    if let Some(body) = body {
        stream.write_all(body)?;
    }
    stream.flush()
}

fn read_response(stream: TcpStream) -> io::Result<Response> {
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line: {status_line:?}"),
            )
        })?;
    // Collect headers up to the blank line, then read the body to EOF
    // (Connection: close delimits it).
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line.trim_end().is_empty() {
            break;
        }
        if let Some((name, value)) = line.trim_end().split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let mut body = String::new();
    reader.read_to_string(&mut body)?;
    let lines = body
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| Json::parse(l).ok())
        .collect();
    Ok(Response {
        status,
        headers,
        lines,
    })
}
