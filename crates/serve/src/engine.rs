//! The job engine: validates a tenant's job descriptor, content-addresses
//! the whole job, and runs it **at most once** no matter how many
//! identical requests arrive concurrently or sequentially.
//!
//! The layering per submission:
//!
//! 1. **validate** — [`autoax::JobSpec::validate`] against the server's
//!    [`autoax::JobLimits`], names resolved through the
//!    [`crate::registry::Registry`];
//! 2. **result cache** — a finished identical job is served straight
//!    from the [`ShardedStore`] (LRU-fronted, so repeats don't touch
//!    disk);
//! 3. **single-flight** — a *running* identical job absorbs the request
//!    as a follower; only a leader proceeds;
//! 4. **admission** — the leader takes a per-tenant-fair
//!    [`crate::gate::AdmissionGate`] slot and runs the pipeline with the
//!    shared store (Step-1/2 artifacts dedupe across *different* specs
//!    of the same workload) and the server's cancellation token.
//!
//! Between 2 and 3 there is a classic race: a leader can finish and
//! retire its flight after another thread missed the cache but before it
//! called `begin`. The second thread then becomes a fresh leader — so it
//! **re-checks the result cache after winning leadership**. That
//! double-check is what makes "N concurrent identical submissions,
//! exactly one execution" a hard invariant rather than a likelihood,
//! and the concurrency tests assert it through the
//! [`JobEngine::executions`] counter.

use crate::gate::AdmissionGate;
use crate::http::ProtocolError;
use crate::json::{obj, Json};
use crate::registry::{NamedWorkload, Registry, ResolvedJob};
use crate::singleflight::{Role, SingleFlight};
use autoax::pipeline::{run_pipeline, PipelineOptions, PipelineResult};
use autoax::{AutoAxError, CancelToken, JobLimits, JobSpec, SearchAlgo};
use autoax_store::cache::{BlobStore, CacheKey, CacheMode, KeyHasher, Loaded};
use autoax_store::{ShardedStore, StoreStats};
use autoax_telemetry as telemetry;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Blob kind of persisted whole-job results in the store.
const RESULT_KIND: &str = "serve-result";
/// Format tag of the result codec (bump on layout change).
const RESULT_TAG: [u8; 4] = *b"SRV1";

/// One tenant request: names into the registry plus the tenant-choosable
/// pipeline knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRequest {
    /// Fairness bucket for admission control (not part of job identity:
    /// identical jobs dedupe across tenants).
    pub tenant: String,
    /// Catalogue workload name.
    pub workload: String,
    /// Catalogue library name.
    pub library: String,
    /// The tenant-choosable pipeline knobs.
    pub spec: JobSpec,
}

impl JobRequest {
    /// Parses the `POST /jobs` body. Absent optional fields fall back to
    /// [`JobSpec::default`]; present-but-mistyped fields are errors.
    ///
    /// # Errors
    /// [`ProtocolError::BadField`] naming the offending field.
    pub fn from_json(v: &Json) -> Result<JobRequest, ProtocolError> {
        let bad = |m: &str| ProtocolError::BadField(m.to_string());
        if !matches!(v, Json::Obj(_)) {
            return Err(bad("request body must be a JSON object"));
        }
        let str_field = |key: &str| -> Result<Option<String>, ProtocolError> {
            match v.get(key) {
                None => Ok(None),
                Some(j) => j
                    .as_str()
                    .map(|s| Some(s.to_string()))
                    .ok_or_else(|| bad(&format!("{key}: must be a string"))),
            }
        };
        let count_field = |key: &str| -> Result<Option<usize>, ProtocolError> {
            match v.get(key) {
                None => Ok(None),
                Some(j) => j
                    .as_usize()
                    .map(Some)
                    .ok_or_else(|| bad(&format!("{key}: must be a non-negative integer"))),
            }
        };
        let workload = str_field("workload")?.ok_or_else(|| bad("workload: required"))?;
        let library = str_field("library")?.unwrap_or_else(|| "tiny".to_string());
        let tenant = str_field("tenant")?.unwrap_or_else(|| "anonymous".to_string());
        let mut spec = JobSpec::default();
        if let Some(name) = str_field("strategy")? {
            spec.strategy = SearchAlgo::parse(&name)
                .ok_or_else(|| bad(&format!("strategy: unknown strategy `{name}`")))?;
        }
        if let Some(n) = count_field("max_evals")? {
            spec.max_evals = n;
        }
        if let Some(n) = count_field("train_configs")? {
            spec.train_configs = n;
        }
        if let Some(n) = count_field("test_configs")? {
            spec.test_configs = n;
        }
        if let Some(n) = count_field("final_eval_cap")? {
            spec.final_eval_cap = n;
        }
        if let Some(n) = count_field("seed")? {
            spec.seed = n as u64;
        }
        Ok(JobRequest {
            tenant,
            workload,
            library,
            spec,
        })
    }
}

/// One accepted Pareto-front member, as streamed to the client.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontMember {
    /// Real QoR.
    pub qor: f64,
    /// Real area (µm²).
    pub area: f64,
    /// Real energy per op (fJ).
    pub energy: f64,
    /// The configuration's genome.
    pub genes: Vec<u16>,
}

/// The finished job: what fans out to waiters, persists in the result
/// cache and streams to clients.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Name of the QoR measure (`"SSIM"`, …).
    pub qor_metric: String,
    /// The accepted front, sorted as the pipeline emits it.
    pub members: Vec<FrontMember>,
    /// [`PipelineResult::front_digest`] of the run — the byte-identity
    /// fingerprint every waiter of a deduped job must agree on.
    pub front_digest: u64,
}

impl JobResult {
    fn from_pipeline(res: &PipelineResult) -> JobResult {
        JobResult {
            qor_metric: res.qor_metric.to_string(),
            members: res
                .final_front
                .iter()
                .map(|m| FrontMember {
                    qor: m.qor,
                    area: m.area,
                    energy: m.energy,
                    genes: m.config.genes().to_vec(),
                })
                .collect(),
            front_digest: res.front_digest(),
        }
    }

    /// JSON form; floats round-trip bit-exactly (shortest-repr printing),
    /// the digest travels as 16 hex digits (JSON numbers die past 2^53).
    pub fn to_json(&self) -> Json {
        obj([
            ("qor_metric", Json::Str(self.qor_metric.clone())),
            (
                "front_digest",
                Json::Str(format!("{:016x}", self.front_digest)),
            ),
            (
                "members",
                Json::Arr(
                    self.members
                        .iter()
                        .map(|m| {
                            obj([
                                ("qor", Json::Num(m.qor)),
                                ("area", Json::Num(m.area)),
                                ("energy", Json::Num(m.energy)),
                                (
                                    "genes",
                                    Json::Arr(
                                        m.genes.iter().map(|&g| Json::Num(g as f64)).collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Inverse of [`JobResult::to_json`]; `None` on any shape mismatch
    /// (a corrupt cache entry degrades to a miss, never to a panic).
    pub fn from_json(v: &Json) -> Option<JobResult> {
        let qor_metric = v.get("qor_metric")?.as_str()?.to_string();
        let front_digest = u64::from_str_radix(v.get("front_digest")?.as_str()?, 16).ok()?;
        let mut members = Vec::new();
        for m in v.get("members")?.as_arr()? {
            let genes = m
                .get("genes")?
                .as_arr()?
                .iter()
                .map(|g| {
                    g.as_usize()
                        .filter(|&n| n <= u16::MAX as usize)
                        .map(|n| n as u16)
                })
                .collect::<Option<Vec<u16>>>()?;
            members.push(FrontMember {
                qor: m.get("qor")?.as_f64()?,
                area: m.get("area")?.as_f64()?,
                energy: m.get("energy")?.as_f64()?,
                genes,
            });
        }
        Some(JobResult {
            qor_metric,
            members,
            front_digest,
        })
    }
}

/// How a submission was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// This submission ran the pipeline (it was the leader).
    Computed,
    /// Absorbed into a concurrently running identical job.
    Deduped,
    /// Answered from the persisted result cache.
    Cached,
}

/// A satisfied submission.
pub struct JobOutcome {
    /// The result (shared, not copied, across waiters).
    pub result: Arc<JobResult>,
    /// How it was satisfied.
    pub served: Served,
}

/// Engine construction knobs.
pub struct EngineConfig {
    /// Root directory of the sharded store.
    pub cache_dir: PathBuf,
    /// Per-job ceilings tenant specs are validated against.
    pub limits: JobLimits,
    /// Global concurrent-job cap (admission gate).
    pub global_jobs: usize,
    /// Per-tenant concurrent-job cap (admission gate).
    pub tenant_jobs: usize,
    /// Server-side template options: everything a [`JobSpec`] does not
    /// carry (preprocessing, engine, throughput knobs) comes from here.
    pub base: PipelineOptions,
}

impl EngineConfig {
    /// Defaults over a cache directory: quick-profile template, default
    /// limits, 4 concurrent jobs (2 per tenant).
    pub fn new(cache_dir: impl Into<PathBuf>) -> Self {
        EngineConfig {
            cache_dir: cache_dir.into(),
            limits: JobLimits::default(),
            global_jobs: 4,
            tenant_jobs: 2,
            base: PipelineOptions::quick(),
        }
    }
}

/// Cumulative engine counters (monotonic; read with `Relaxed`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Pipeline executions actually performed.
    pub executions: u64,
    /// Submissions absorbed as single-flight followers.
    pub dedup_waits: u64,
    /// Submissions answered from the persisted result cache.
    pub result_cache_hits: u64,
    /// The underlying store's tier counters.
    pub store: StoreStats,
}

/// The engine. Shared across connection workers via `Arc`.
pub struct JobEngine {
    registry: Registry,
    store: Arc<ShardedStore>,
    flight: SingleFlight<CacheKey, Arc<JobResult>>,
    gate: Arc<AdmissionGate>,
    limits: JobLimits,
    base: PipelineOptions,
    shutdown: CancelToken,
    executions: AtomicU64,
    dedup_waits: AtomicU64,
    result_cache_hits: AtomicU64,
}

impl JobEngine {
    /// Builds an engine over its sharded store.
    pub fn new(cfg: EngineConfig) -> Self {
        JobEngine {
            registry: Registry,
            store: Arc::new(ShardedStore::with_defaults(cfg.cache_dir)),
            flight: SingleFlight::new(),
            gate: Arc::new(AdmissionGate::new(cfg.global_jobs, cfg.tenant_jobs)),
            limits: cfg.limits,
            base: cfg.base,
            shutdown: CancelToken::new(),
            executions: AtomicU64::new(0),
            dedup_waits: AtomicU64::new(0),
            result_cache_hits: AtomicU64::new(0),
        }
    }

    /// The token a graceful server shutdown fires; running jobs stop at
    /// the next stage/round boundary.
    pub fn shutdown_token(&self) -> CancelToken {
        self.shutdown.clone()
    }

    /// Pipeline executions performed so far — the "exactly one
    /// computation" instrument of the concurrency tests.
    pub fn executions(&self) -> u64 {
        self.executions.load(Ordering::Relaxed)
    }

    /// Current counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            executions: self.executions.load(Ordering::Relaxed),
            dedup_waits: self.dedup_waits.load(Ordering::Relaxed),
            result_cache_hits: self.result_cache_hits.load(Ordering::Relaxed),
            store: self.store.stats(),
        }
    }

    /// Jobs currently past admission (running a pipeline).
    pub fn running(&self) -> usize {
        self.gate.running()
    }

    /// Identical-job content address: catalogue names + the full spec.
    /// The registry owns what the names mean, so within one server the
    /// address pins the exact computation. The tenant is deliberately
    /// not part of it.
    pub fn job_key(req: &JobRequest) -> CacheKey {
        let mut h = KeyHasher::new("serve-job");
        h.write_str(&req.workload);
        h.write_str(&req.library);
        req.spec.digest(&mut h);
        h.finish()
    }

    fn load_cached(&self, key: CacheKey) -> Option<Arc<JobResult>> {
        match self.store.load_blob(RESULT_KIND, key, RESULT_TAG) {
            Loaded::Hit(bytes) => std::str::from_utf8(&bytes)
                .ok()
                .and_then(|text| Json::parse(text).ok())
                .and_then(|v| JobResult::from_json(&v))
                .map(Arc::new),
            _ => None,
        }
    }

    /// Runs (or joins, or recalls) one job.
    ///
    /// # Errors
    /// [`ProtocolError::BadField`] for invalid specs or unknown names,
    /// [`ProtocolError::Busy`] when admission is refused,
    /// [`ProtocolError::JobFailed`] when the pipeline errors (including
    /// shutdown cancellation).
    pub fn submit(&self, req: &JobRequest) -> Result<JobOutcome, ProtocolError> {
        req.spec
            .validate(&self.limits)
            .map_err(|e| ProtocolError::BadField(e.to_string()))?;
        let resolved = self
            .registry
            .resolve(&req.workload, &req.library)
            .map_err(|e| ProtocolError::BadField(e.to_string()))?;
        let key = Self::job_key(req);

        if let Some(result) = self.load_cached(key) {
            self.result_cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(JobOutcome {
                result,
                served: Served::Cached,
            });
        }
        match self.flight.begin(key) {
            Role::Follower(f) => {
                self.dedup_waits.fetch_add(1, Ordering::Relaxed);
                match f.wait() {
                    Ok(result) => Ok(JobOutcome {
                        result,
                        served: Served::Deduped,
                    }),
                    Err(e) => Err(ProtocolError::JobFailed(e)),
                }
            }
            Role::Leader(leader) => {
                // Double-check the result cache *after* winning
                // leadership: an earlier leader may have completed
                // between our miss above and begin(). This closes the
                // window in which an identical job could execute twice.
                if let Some(result) = self.load_cached(key) {
                    self.result_cache_hits.fetch_add(1, Ordering::Relaxed);
                    leader.complete(Arc::clone(&result));
                    return Ok(JobOutcome {
                        result,
                        served: Served::Cached,
                    });
                }
                let _permit = match self.gate.try_acquire(&req.tenant) {
                    Ok(p) => p,
                    Err(refused) => {
                        if telemetry::metrics_enabled() {
                            telemetry::counter_with(
                                "autoax_serve_rejections_total",
                                &[("reason", refused.label())],
                            )
                            .inc();
                        }
                        leader.fail(refused.to_string());
                        return Err(ProtocolError::Busy(refused.to_string()));
                    }
                };
                self.executions.fetch_add(1, Ordering::Relaxed);
                match self.run(&resolved, &req.spec) {
                    Ok(result) => {
                        let result = Arc::new(result);
                        // Persist before publishing so late arrivals that
                        // miss the flight find the cache instead.
                        let payload = result.to_json().to_string().into_bytes();
                        let _ = self.store.save_blob(RESULT_KIND, key, RESULT_TAG, payload);
                        leader.complete(Arc::clone(&result));
                        Ok(JobOutcome {
                            result,
                            served: Served::Computed,
                        })
                    }
                    Err(e) => {
                        let msg = e.to_string();
                        leader.fail(msg.clone());
                        Err(ProtocolError::JobFailed(msg))
                    }
                }
            }
        }
    }

    fn run(&self, resolved: &ResolvedJob, spec: &JobSpec) -> Result<JobResult, AutoAxError> {
        let mut opts = spec.to_options(&self.base);
        opts.cache_store = Some(Arc::clone(&self.store) as Arc<dyn BlobStore>);
        opts.cache_mode = CacheMode::ReadWrite;
        opts.cancel = self.shutdown.clone();
        let res = match &resolved.workload {
            NamedWorkload::Sobel(w) => run_pipeline(w, &resolved.lib, &resolved.images, &opts)?,
            NamedWorkload::Gaussian(w) => run_pipeline(w, &resolved.lib, &resolved.images, &opts)?,
        };
        Ok(JobResult::from_pipeline(&res))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(seed: u64) -> JobRequest {
        JobRequest {
            tenant: "t".into(),
            workload: "sobel".into(),
            library: "tiny".into(),
            spec: JobSpec {
                seed,
                ..JobSpec::default()
            },
        }
    }

    #[test]
    fn job_key_separates_names_and_specs_but_not_tenants() {
        let base = req(1);
        let other_tenant = JobRequest {
            tenant: "someone-else".into(),
            ..base.clone()
        };
        assert_eq!(JobEngine::job_key(&base), JobEngine::job_key(&other_tenant));
        let other_workload = JobRequest {
            workload: "gaussian".into(),
            ..base.clone()
        };
        assert_ne!(
            JobEngine::job_key(&base),
            JobEngine::job_key(&other_workload)
        );
        assert_ne!(JobEngine::job_key(&base), JobEngine::job_key(&req(2)));
    }

    #[test]
    fn request_parsing_defaults_and_typed_failures() {
        let body = Json::parse(
            r#"{"workload":"sobel","strategy":"nsga2","max_evals":500,"seed":9,"tenant":"alice"}"#,
        )
        .unwrap();
        let parsed = JobRequest::from_json(&body).unwrap();
        assert_eq!(parsed.workload, "sobel");
        assert_eq!(parsed.library, "tiny", "library defaults");
        assert_eq!(parsed.tenant, "alice");
        assert_eq!(parsed.spec.strategy, SearchAlgo::Nsga2);
        assert_eq!(parsed.spec.max_evals, 500);
        assert_eq!(parsed.spec.seed, 9);
        assert_eq!(
            parsed.spec.train_configs,
            JobSpec::default().train_configs,
            "absent knobs default"
        );

        for (label, body) in [
            ("non-object", "[1,2]"),
            ("missing workload", r#"{"seed":1}"#),
            ("mistyped workload", r#"{"workload":7}"#),
            (
                "unknown strategy",
                r#"{"workload":"sobel","strategy":"sa"}"#,
            ),
            ("negative count", r#"{"workload":"sobel","max_evals":-5}"#),
            ("fractional count", r#"{"workload":"sobel","seed":1.5}"#),
        ] {
            let v = Json::parse(body).unwrap();
            match JobRequest::from_json(&v) {
                Err(ProtocolError::BadField(_)) => {}
                other => panic!("case `{label}`: expected BadField, got {other:?}"),
            }
        }
    }

    #[test]
    fn submit_rejects_before_touching_the_gate() {
        let dir = std::env::temp_dir().join(format!("autoax-serve-rej-{}", std::process::id()));
        let engine = JobEngine::new(EngineConfig::new(&dir));
        let over = JobRequest {
            spec: JobSpec {
                max_evals: usize::MAX,
                ..JobSpec::default()
            },
            ..req(1)
        };
        assert!(matches!(
            engine.submit(&over),
            Err(ProtocolError::BadField(_))
        ));
        let unknown = JobRequest {
            workload: "fft".into(),
            ..req(1)
        };
        assert!(matches!(
            engine.submit(&unknown),
            Err(ProtocolError::BadField(_))
        ));
        assert_eq!(engine.executions(), 0);
        assert_eq!(engine.running(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn result_json_round_trips_bit_exactly() {
        let result = JobResult {
            qor_metric: "SSIM".into(),
            members: vec![FrontMember {
                qor: 0.123_456_789_123_456_78,
                area: 1.0 / 3.0,
                energy: 6.02e-23,
                genes: vec![0, 3, 65535],
            }],
            front_digest: 0xDEAD_BEEF_0123_4567,
        };
        let text = result.to_json().to_string();
        let back = JobResult::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.front_digest, result.front_digest);
        assert_eq!(
            back.members[0].qor.to_bits(),
            result.members[0].qor.to_bits()
        );
        assert_eq!(back, result);
        // Corrupt shapes degrade to None, not panics.
        assert!(JobResult::from_json(&Json::parse("{}").unwrap()).is_none());
        assert!(JobResult::from_json(
            &Json::parse(r#"{"qor_metric":"x","front_digest":"zz","members":[]}"#).unwrap()
        )
        .is_none());
    }
}
