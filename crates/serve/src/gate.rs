//! Admission control with per-tenant fairness: a global cap on
//! concurrently *running* jobs plus a smaller per-tenant cap, so one
//! chatty tenant can saturate neither the worker pool nor the gate —
//! other tenants always have admission slots only they can use.
//!
//! Load is shed, not queued: [`AdmissionGate::try_acquire`] refuses
//! immediately (the HTTP layer answers `429`) instead of parking the
//! connection thread. The bounded queue lives one layer down in
//! [`autoax_exec::WorkerPool`]; the gate bounds what is allowed past it.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Why admission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Refused {
    /// The global running-job cap is reached.
    ServerSaturated,
    /// This tenant is already at its per-tenant cap.
    TenantSaturated,
}

impl Refused {
    /// Stable label for the metrics stream
    /// (`autoax_serve_rejections_total{reason=...}`).
    pub fn label(&self) -> &'static str {
        match self {
            Refused::ServerSaturated => "server_saturated",
            Refused::TenantSaturated => "tenant_saturated",
        }
    }
}

impl std::fmt::Display for Refused {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Refused::ServerSaturated => write!(f, "server is at its concurrent-job limit"),
            Refused::TenantSaturated => write!(f, "tenant is at its concurrent-job limit"),
        }
    }
}

#[derive(Default)]
struct GateState {
    total: usize,
    per_tenant: HashMap<String, usize>,
}

/// The gate. Clone-free shared use via `Arc`.
pub struct AdmissionGate {
    state: Mutex<GateState>,
    global_cap: usize,
    tenant_cap: usize,
}

/// An admission slot; dropping it releases the slot.
pub struct Permit {
    gate: Arc<AdmissionGate>,
    tenant: String,
}

impl AdmissionGate {
    /// A gate admitting at most `global_cap` jobs overall and
    /// `tenant_cap` per tenant (both clamped to ≥ 1; a `tenant_cap`
    /// above `global_cap` is effectively `global_cap`).
    pub fn new(global_cap: usize, tenant_cap: usize) -> Self {
        AdmissionGate {
            state: Mutex::new(GateState::default()),
            global_cap: global_cap.max(1),
            tenant_cap: tenant_cap.max(1),
        }
    }

    /// Tries to admit one job for `tenant`.
    ///
    /// # Errors
    /// [`Refused`] naming which cap was hit; nothing is held on refusal.
    pub fn try_acquire(self: &Arc<Self>, tenant: &str) -> Result<Permit, Refused> {
        let mut state = self.state.lock().expect("gate lock poisoned");
        if state.total >= self.global_cap {
            return Err(Refused::ServerSaturated);
        }
        let mine = state.per_tenant.get(tenant).copied().unwrap_or(0);
        if mine >= self.tenant_cap {
            return Err(Refused::TenantSaturated);
        }
        state.total += 1;
        state.per_tenant.insert(tenant.to_string(), mine + 1);
        Ok(Permit {
            gate: Arc::clone(self),
            tenant: tenant.to_string(),
        })
    }

    /// Jobs currently admitted.
    pub fn running(&self) -> usize {
        self.state.lock().expect("gate lock poisoned").total
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut state = self.gate.state.lock().expect("gate lock poisoned");
        state.total -= 1;
        match state.per_tenant.get_mut(&self.tenant) {
            Some(n) if *n > 1 => *n -= 1,
            _ => {
                // Last slot for this tenant: drop the map entry so an
                // open-ended tenant-name space can't grow the map forever.
                state.per_tenant.remove(&self.tenant);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_tenant_cap_leaves_room_for_others() {
        let gate = Arc::new(AdmissionGate::new(4, 2));
        let _a1 = gate.try_acquire("a").unwrap();
        let _a2 = gate.try_acquire("a").unwrap();
        // Tenant a is at its cap, but the server is not.
        assert_eq!(gate.try_acquire("a").err(), Some(Refused::TenantSaturated));
        let _b1 = gate.try_acquire("b").unwrap();
        let _b2 = gate.try_acquire("b").unwrap();
        assert_eq!(gate.running(), 4);
        // Now the global cap bites first, for any tenant.
        assert_eq!(gate.try_acquire("c").err(), Some(Refused::ServerSaturated));
    }

    #[test]
    fn dropping_a_permit_frees_the_slot() {
        let gate = Arc::new(AdmissionGate::new(2, 1));
        let a = gate.try_acquire("a").unwrap();
        assert!(gate.try_acquire("a").is_err());
        drop(a);
        assert_eq!(gate.running(), 0);
        let _again = gate.try_acquire("a").unwrap();
    }

    #[test]
    fn tenant_bookkeeping_does_not_leak_names() {
        let gate = Arc::new(AdmissionGate::new(8, 2));
        for i in 0..100 {
            let p = gate.try_acquire(&format!("tenant-{i}")).unwrap();
            drop(p);
        }
        assert!(gate.state.lock().unwrap().per_tenant.is_empty());
    }
}
