//! A deliberately small HTTP/1.1 server-side codec: request parsing with
//! hard limits, and response writing. No keep-alive (every response is
//! `Connection: close`), no chunked bodies, no TLS — the service speaks
//! plain `POST` + JSON and streams NDJSON back, and everything beyond
//! that is rejected with a typed [`ProtocolError`] that maps onto a
//! status code.

use std::io::{BufRead, Write};

/// Hard per-request ceilings.
#[derive(Debug, Clone, Copy)]
pub struct HttpLimits {
    /// Maximum bytes of request line + headers combined.
    pub max_head_bytes: usize,
    /// Maximum request body bytes (`Content-Length` above this is
    /// rejected before reading the body).
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 64 * 1024,
        }
    }
}

/// Why a request was refused; each variant maps to one status code
/// ([`ProtocolError::status`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The request line is not `METHOD PATH HTTP/1.x`.
    BadRequestLine,
    /// Request line + headers exceed [`HttpLimits::max_head_bytes`].
    HeadTooLarge,
    /// A header line has no `:` separator.
    BadHeader,
    /// `Content-Length` is missing on a method that requires a body.
    MissingLength,
    /// `Content-Length` is not a non-negative integer.
    BadLength,
    /// Declared `Content-Length` exceeds [`HttpLimits::max_body_bytes`].
    BodyTooLarge {
        /// Declared length.
        declared: usize,
        /// The server's limit.
        limit: usize,
    },
    /// The connection closed before `Content-Length` bytes arrived.
    Truncated {
        /// Bytes the client declared.
        declared: usize,
        /// Bytes that actually arrived.
        got: usize,
    },
    /// The body is not valid JSON.
    BadJson(String),
    /// The JSON body is missing or mistypes a required field.
    BadField(String),
    /// Method/path pair the server does not route.
    NotFound,
    /// Admission control refused the job (queue full or tenant at cap).
    Busy(String),
    /// The job failed while running.
    JobFailed(String),
}

impl ProtocolError {
    /// The HTTP status this error is reported as.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            ProtocolError::BadRequestLine
            | ProtocolError::BadHeader
            | ProtocolError::MissingLength
            | ProtocolError::BadLength
            | ProtocolError::Truncated { .. }
            | ProtocolError::BadJson(_)
            | ProtocolError::BadField(_) => (400, "Bad Request"),
            ProtocolError::NotFound => (404, "Not Found"),
            ProtocolError::HeadTooLarge => (431, "Request Header Fields Too Large"),
            ProtocolError::BodyTooLarge { .. } => (413, "Payload Too Large"),
            ProtocolError::Busy(_) => (429, "Too Many Requests"),
            ProtocolError::JobFailed(_) => (500, "Internal Server Error"),
        }
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::BadRequestLine => write!(f, "malformed request line"),
            ProtocolError::HeadTooLarge => write!(f, "request head too large"),
            ProtocolError::BadHeader => write!(f, "malformed header line"),
            ProtocolError::MissingLength => write!(f, "Content-Length required"),
            ProtocolError::BadLength => write!(f, "unparseable Content-Length"),
            ProtocolError::BodyTooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds the {limit}-byte limit")
            }
            ProtocolError::Truncated { declared, got } => {
                write!(f, "body truncated: {got} of {declared} declared bytes")
            }
            ProtocolError::BadJson(m) => write!(f, "invalid JSON body: {m}"),
            ProtocolError::BadField(m) => write!(f, "bad request field: {m}"),
            ProtocolError::NotFound => write!(f, "no such route"),
            ProtocolError::Busy(m) => write!(f, "busy: {m}"),
            ProtocolError::JobFailed(m) => write!(f, "job failed: {m}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method.
    pub method: String,
    /// Raw path (no query parsing — the API doesn't use queries).
    pub path: String,
    /// Lower-cased header names with trimmed values, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// First header value under `name` (lower-case).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one request from `reader` under `limits`.
///
/// `GET`/`DELETE` requests may omit `Content-Length` (empty body); any
/// other method must declare one.
///
/// # Errors
/// [`ProtocolError`] describing the first violation encountered.
pub fn read_request(
    reader: &mut impl BufRead,
    limits: &HttpLimits,
) -> Result<Request, ProtocolError> {
    let mut head_bytes = 0usize;
    let mut line = String::new();
    let mut read_line = |line: &mut String, head_bytes: &mut usize| -> Result<(), ProtocolError> {
        line.clear();
        // Byte-capped read_line: a header stream with no newline must
        // hit HeadTooLarge, not grow without bound.
        loop {
            let buf = reader.fill_buf().map_err(|_| ProtocolError::Truncated {
                declared: 0,
                got: *head_bytes,
            })?;
            if buf.is_empty() {
                return Err(ProtocolError::BadRequestLine);
            }
            let take = buf
                .iter()
                .position(|&b| b == b'\n')
                .map(|i| i + 1)
                .unwrap_or(buf.len());
            *head_bytes += take;
            if *head_bytes > limits.max_head_bytes {
                return Err(ProtocolError::HeadTooLarge);
            }
            line.push_str(&String::from_utf8_lossy(&buf[..take]));
            let found_newline = line.ends_with('\n');
            reader.consume(take);
            if found_newline {
                return Ok(());
            }
        }
    };

    read_line(&mut line, &mut head_bytes)?;
    let mut parts = line.trim_end().split(' ');
    let (method, path, version) = (
        parts.next().unwrap_or_default(),
        parts.next().unwrap_or_default(),
        parts.next().unwrap_or_default(),
    );
    if method.is_empty()
        || path.is_empty()
        || !version.starts_with("HTTP/1.")
        || parts.next().is_some()
    {
        return Err(ProtocolError::BadRequestLine);
    }
    let method = method.to_ascii_uppercase();
    let path = path.to_string();

    let mut headers = Vec::new();
    loop {
        read_line(&mut line, &mut head_bytes)?;
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let (name, value) = trimmed.split_once(':').ok_or(ProtocolError::BadHeader)?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let length = headers.iter().find(|(k, _)| k == "content-length");
    let declared = match length {
        Some((_, v)) => v.parse::<usize>().map_err(|_| ProtocolError::BadLength)?,
        None if matches!(method.as_str(), "GET" | "DELETE" | "HEAD") => 0,
        None => return Err(ProtocolError::MissingLength),
    };
    if declared > limits.max_body_bytes {
        return Err(ProtocolError::BodyTooLarge {
            declared,
            limit: limits.max_body_bytes,
        });
    }
    let mut body = vec![0u8; declared];
    let mut got = 0usize;
    while got < declared {
        match reader.read(&mut body[got..]) {
            Ok(0) | Err(_) => return Err(ProtocolError::Truncated { declared, got }),
            Ok(n) => got += n,
        }
    }
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Writes a response head: status line plus the standard service headers
/// (`Connection: close`, the given content type) and a blank line. The
/// caller streams the body afterwards; the connection close delimits it.
pub fn write_head(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
) -> std::io::Result<()> {
    write_head_with(w, status, reason, content_type, &[])
}

/// [`write_head`] plus extra response headers (e.g. `X-Request-Id`).
pub fn write_head_with(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    extra: &[(&str, &str)],
) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nConnection: close\r\n"
    )?;
    for (name, value) in extra {
        write!(w, "{name}: {value}\r\n")?;
    }
    write!(w, "\r\n")
}

/// Writes a complete JSON error response for `err`.
pub fn write_error(w: &mut impl Write, err: &ProtocolError) -> std::io::Result<()> {
    let (status, reason) = err.status();
    write_head(w, status, reason, "application/json")?;
    let body = crate::json::obj([("error", crate::json::Json::Str(err.to_string()))]);
    writeln!(w, "{body}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Request, ProtocolError> {
        read_request(&mut BufReader::new(raw), &HttpLimits::default())
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            b"POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\nX-Tenant: t1\r\n\r\nabcd",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.header("x-tenant"), Some("t1"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn get_without_length_has_empty_body() {
        let req = parse(b"GET /health HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    /// The protocol-robustness table: raw bytes in, typed error out.
    #[test]
    fn malformed_requests_map_to_typed_errors() {
        let limits = HttpLimits {
            max_head_bytes: 256,
            max_body_bytes: 64,
        };
        let huge_head = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(512));
        let endless_line = vec![b'g'; 512];
        let cases: Vec<(&str, Vec<u8>, ProtocolError)> = vec![
            ("empty stream", Vec::new(), ProtocolError::BadRequestLine),
            (
                "garbage request line",
                b"NOT-HTTP\r\n\r\n".to_vec(),
                ProtocolError::BadRequestLine,
            ),
            (
                "wrong protocol version",
                b"GET / SMTP/1.0\r\n\r\n".to_vec(),
                ProtocolError::BadRequestLine,
            ),
            (
                "line without separator",
                b"POST /jobs HTTP/1.1\r\nNoColonHere\r\n\r\n".to_vec(),
                ProtocolError::BadHeader,
            ),
            (
                "oversized head",
                huge_head.into_bytes(),
                ProtocolError::HeadTooLarge,
            ),
            (
                "newline-free stream",
                endless_line,
                ProtocolError::HeadTooLarge,
            ),
            (
                "post without length",
                b"POST /jobs HTTP/1.1\r\n\r\n".to_vec(),
                ProtocolError::MissingLength,
            ),
            (
                "unparseable length",
                b"POST /jobs HTTP/1.1\r\nContent-Length: ten\r\n\r\n".to_vec(),
                ProtocolError::BadLength,
            ),
            (
                "negative length",
                b"POST /jobs HTTP/1.1\r\nContent-Length: -1\r\n\r\n".to_vec(),
                ProtocolError::BadLength,
            ),
            (
                "oversized payload",
                b"POST /jobs HTTP/1.1\r\nContent-Length: 100000\r\n\r\n".to_vec(),
                ProtocolError::BodyTooLarge {
                    declared: 100_000,
                    limit: 64,
                },
            ),
            (
                "truncated body",
                b"POST /jobs HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc".to_vec(),
                ProtocolError::Truncated {
                    declared: 10,
                    got: 3,
                },
            ),
        ];
        for (label, raw, expect) in cases {
            let got = read_request(&mut BufReader::new(raw.as_slice()), &limits).unwrap_err();
            assert_eq!(got, expect, "case `{label}`");
        }
    }

    #[test]
    fn every_error_has_a_4xx_or_5xx_status() {
        let samples = [
            ProtocolError::BadRequestLine,
            ProtocolError::HeadTooLarge,
            ProtocolError::BadHeader,
            ProtocolError::MissingLength,
            ProtocolError::BadLength,
            ProtocolError::BodyTooLarge {
                declared: 1,
                limit: 0,
            },
            ProtocolError::Truncated {
                declared: 1,
                got: 0,
            },
            ProtocolError::BadJson("x".into()),
            ProtocolError::BadField("x".into()),
            ProtocolError::NotFound,
            ProtocolError::Busy("x".into()),
            ProtocolError::JobFailed("x".into()),
        ];
        for e in samples {
            let (code, reason) = e.status();
            assert!((400..=599).contains(&code), "{e}: {code}");
            assert!(!reason.is_empty());
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn response_head_is_close_delimited() {
        let mut out = Vec::new();
        write_head(&mut out, 200, "OK", "application/x-ndjson").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Connection: close"));
        assert!(text.ends_with("\r\n\r\n"));
    }
}
