//! A minimal JSON value, parser and writer — the wire format of the
//! service tier, hand-rolled because the build environment has no
//! crates.io access.
//!
//! Scope: the full JSON grammar minus extremes — no `\u` surrogate-pair
//! decoding beyond the BMP, numbers parsed as `f64`. Numbers print via
//! Rust's shortest-round-trip `Display`, so an `f64` survives a
//! serialize→parse cycle bit-exactly; values that must stay exact past
//! 2^53 (cache keys, digests) travel as hex strings instead.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered (no key dedup — last lookup wins
    /// never arises because [`Json::get`] returns the first match).
    Obj(Vec<(String, Json)>),
}

/// Parse failure: message plus byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: &'static str,
    /// Byte offset where it went wrong.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one JSON document; trailing non-whitespace is an error.
    ///
    /// # Errors
    /// [`JsonError`] with the byte offset of the first problem.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// First value under `key` (objects only; `None` otherwise).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number payload as a non-negative integer: rejects negatives,
    /// fractions and anything past 2^53 (where `f64` drops integers).
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        if n < 0.0 || n.fract() != 0.0 || n > 9_007_199_254_740_992.0 {
            return None;
        }
        Some(n as usize)
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Nesting ceiling: a parser recursing per `[`/`{` must bound depth or a
/// hostile body of 100k brackets overflows the stack.
const MAX_DEPTH: usize = 64;

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { msg, at: self.pos }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &[u8], value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| JsonError {
            msg: "invalid number",
            at: start,
        })?;
        if !n.is_finite() {
            return Err(JsonError {
                msg: "number out of range",
                at: start,
            });
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // bytes are valid UTF-8 by construction).
                    let s = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(s)
                        .ok()
                        .and_then(|t| t.chars().next())
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected array")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected object")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                // JSON has no NaN/Infinity; Json::Num is kept finite by
                // the parser and the engine never emits non-finite
                // objective values, but render defensively as null.
                if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for ch in s.chars() {
        match ch {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_fmt(format_args!("{c}"))?,
        }
    }
    f.write_str("\"")
}

/// Builds a `Json::Obj` from `(key, value)` pairs.
pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e1").unwrap(), Json::Num(-25.0));
        assert_eq!(
            Json::parse(r#""a\"b\nA""#).unwrap(),
            Json::Str("a\"b\nA".into())
        );
        let doc = Json::parse(r#"{"k":[1,2,{"x":null}],"y":false}"#).unwrap();
        assert_eq!(doc.get("y"), Some(&Json::Bool(false)));
        assert_eq!(doc.get("k").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn rejects_malformed_documents_with_offsets() {
        for (input, expect_at) in [
            ("", 0),
            ("{", 1),
            ("[1,]", 3),
            (r#"{"a"}"#, 4),
            ("tru", 0),
            ("1e999", 0),
            ("\"ab", 3),
            ("{} {}", 3),
            ("\"\u{0001}\"", 1),
        ] {
            let err = Json::parse(input).unwrap_err();
            assert_eq!(err.at, expect_at, "input={input:?}: {err}");
        }
    }

    #[test]
    fn depth_bomb_is_an_error_not_a_stack_overflow() {
        let bomb = "[".repeat(10_000);
        assert!(Json::parse(&bomb).is_err());
    }

    #[test]
    fn f64_round_trips_bit_exactly() {
        for v in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 12345.678e-90, -0.0] {
            let text = Json::Num(v).to_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} via {text}");
        }
    }

    #[test]
    fn as_usize_rejects_lossy_numbers() {
        assert_eq!(Json::Num(7.0).as_usize(), Some(7));
        assert_eq!(Json::Num(-1.0).as_usize(), None);
        assert_eq!(Json::Num(1.5).as_usize(), None);
        assert_eq!(Json::Num(1e300).as_usize(), None);
    }

    #[test]
    fn display_escapes_and_round_trips() {
        let doc = obj([
            ("text", Json::Str("line\nbreak \"q\" \\ \u{0007}".into())),
            ("n", Json::Num(2.5)),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }
}
