//! `autoax-serve` — DSE-as-a-service over the autoAx pipeline.
//!
//! A dependency-free HTTP/1.1 + JSON front end that turns the library's
//! model-based design-space exploration into a concurrent job service:
//! a request names a workload and component library from the server's
//! catalogue plus a search budget and strategy, and the response streams
//! the accepted Pareto-front members back as NDJSON.
//!
//! The interesting part is what happens *between* identical requests:
//!
//! - a **sharded, LRU-fronted store** ([`autoax_store::ShardedStore`])
//!   persists both pipeline-stage artifacts and whole-job results, so
//!   repeats are answered from memory without touching the pipeline;
//! - **single-flight deduplication** ([`singleflight::SingleFlight`])
//!   collapses concurrent identical jobs onto one execution whose
//!   result fans out to every waiter — with a post-leadership cache
//!   double-check that makes "exactly one execution" an invariant
//!   rather than a likelihood;
//! - a **per-tenant-fair admission gate** ([`gate::AdmissionGate`])
//!   sheds load with `429` instead of queueing unboundedly, and
//!   shutdown is graceful end-to-end (accept loop → worker pool →
//!   cancellation-aware search rounds).
//!
//! Module map: [`json`] (parser/printer), [`http`] (wire format +
//! typed protocol errors), [`singleflight`], [`gate`], [`registry`]
//! (name → artifact catalogue), [`engine`] (the dedupe/cache/run
//! logic), [`server`] (accept loop + routes), [`client`] (blocking
//! test/demo client).

#![warn(missing_docs)]

pub mod client;
pub mod engine;
pub mod gate;
pub mod http;
pub mod json;
pub mod registry;
pub mod server;
pub mod singleflight;

pub use engine::{EngineConfig, EngineStats, JobEngine, JobOutcome, JobRequest, JobResult, Served};
pub use http::{HttpLimits, ProtocolError};
pub use json::Json;
pub use server::{spawn, ServerConfig, ServerHandle};
