//! The server-side catalogue of named workloads, component libraries and
//! benchmark sample sets — what a remote job descriptor's `workload` /
//! `library` strings resolve to.
//!
//! Tenants name things; the server owns the content. That keeps the wire
//! format tiny and makes job identity well-defined: within one server,
//! `(workload name, library name, sample-set name)` pins the exact
//! Step-1/2 inputs, so the engine can content-address whole jobs by
//! names + [`autoax::JobSpec`].
//!
//! Heavy artifacts (the characterized library, the benchmark images) are
//! built once per process on first use and shared across jobs.

use autoax_accel::gaussian_fixed::FixedGaussian;
use autoax_accel::sobel::SobelEd;
use autoax_circuit::charlib::{build_library, ComponentLibrary, LibraryConfig};
use autoax_image::synthetic::benchmark_suite;
use autoax_image::GrayImage;
use std::sync::{Arc, OnceLock};

/// The image workloads the service can run. Both share the
/// [`GrayImage`] sample type, so one registry serves them through one
/// monomorphic pipeline call per variant.
#[derive(Debug)]
pub enum NamedWorkload {
    /// Sobel edge detection (the paper's first case study).
    Sobel(SobelEd),
    /// Fixed-coefficient 5×5 Gaussian blur (the paper's second case
    /// study).
    Gaussian(FixedGaussian),
}

impl NamedWorkload {
    /// The catalogue names, as accepted in job descriptors.
    pub const NAMES: [&'static str; 2] = ["sobel", "gaussian"];

    fn resolve(name: &str) -> Option<NamedWorkload> {
        match name {
            "sobel" => Some(NamedWorkload::Sobel(SobelEd::new())),
            "gaussian" => Some(NamedWorkload::Gaussian(FixedGaussian::new())),
            _ => None,
        }
    }
}

/// Everything a job needs to run: the workload instance plus shared
/// handles on the library and sample set it names.
pub struct ResolvedJob {
    /// The workload to drive.
    pub workload: NamedWorkload,
    /// The characterized component library.
    pub lib: Arc<ComponentLibrary>,
    /// The benchmark samples.
    pub images: Arc<Vec<GrayImage>>,
}

/// What a name failed to resolve to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnknownName {
    /// No workload under this name.
    Workload(String),
    /// No library under this name.
    Library(String),
}

impl std::fmt::Display for UnknownName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnknownName::Workload(n) => write!(
                f,
                "unknown workload `{n}` (expected one of {})",
                NamedWorkload::NAMES.join("|")
            ),
            UnknownName::Library(n) => write!(f, "unknown library `{n}` (expected `tiny`)"),
        }
    }
}

impl std::error::Error for UnknownName {}

impl std::fmt::Debug for ResolvedJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResolvedJob")
            .field("workload", &self.workload)
            .field("components", &self.lib.total_size())
            .field("images", &self.images.len())
            .finish()
    }
}

/// The catalogue. Cheap to construct; the heavy artifacts live in
/// process-wide lazies.
#[derive(Default)]
pub struct Registry;

static TINY_LIB: OnceLock<Arc<ComponentLibrary>> = OnceLock::new();
static IMAGES: OnceLock<Arc<Vec<GrayImage>>> = OnceLock::new();

impl Registry {
    /// Resolves a `(workload, library)` name pair.
    ///
    /// # Errors
    /// [`UnknownName`] for the first name that has no catalogue entry.
    pub fn resolve(&self, workload: &str, library: &str) -> Result<ResolvedJob, UnknownName> {
        let workload = NamedWorkload::resolve(workload)
            .ok_or_else(|| UnknownName::Workload(workload.to_string()))?;
        if library != "tiny" {
            return Err(UnknownName::Library(library.to_string()));
        }
        let lib =
            Arc::clone(TINY_LIB.get_or_init(|| Arc::new(build_library(&LibraryConfig::tiny()))));
        let images = Arc::clone(
            // Small service-tier default: enough texture diversity for
            // meaningful QoR, small enough that a cold job stays in
            // seconds (the quick-test suite size, not the paper's).
            IMAGES.get_or_init(|| Arc::new(benchmark_suite(2, 48, 32, 5))),
        );
        Ok(ResolvedJob {
            workload,
            lib,
            images,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_catalogue_names_and_shares_artifacts() {
        let reg = Registry;
        let a = reg.resolve("sobel", "tiny").unwrap();
        let b = reg.resolve("gaussian", "tiny").unwrap();
        assert!(matches!(a.workload, NamedWorkload::Sobel(_)));
        assert!(matches!(b.workload, NamedWorkload::Gaussian(_)));
        // One build, shared: the Arcs must alias.
        assert!(Arc::ptr_eq(&a.lib, &b.lib));
        assert!(Arc::ptr_eq(&a.images, &b.images));
    }

    #[test]
    fn unknown_names_are_typed_errors() {
        let reg = Registry;
        assert_eq!(
            reg.resolve("fft", "tiny").unwrap_err(),
            UnknownName::Workload("fft".into())
        );
        assert_eq!(
            reg.resolve("sobel", "huge").unwrap_err(),
            UnknownName::Library("huge".into())
        );
        let msg = reg.resolve("fft", "tiny").unwrap_err().to_string();
        assert!(msg.contains("sobel"), "{msg}");
    }
}
