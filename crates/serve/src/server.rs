//! The TCP front end: a non-blocking accept loop feeding an
//! [`autoax_exec::WorkerPool`] of connection handlers.
//!
//! One connection = one request = one response (`Connection: close`);
//! job responses stream as NDJSON so a client sees accepted front
//! members as soon as the job resolves, without chunked encoding.
//!
//! Shutdown is graceful and layered: cancelling the server's token stops
//! the accept loop, the pool drains connections already accepted, and
//! the same token — shared with the engine — makes running pipelines
//! stop at their next stage/round boundary (surfacing as a `500
//! cancelled` to those clients, never a hung socket).

use crate::engine::{EngineConfig, JobEngine, JobOutcome, JobRequest, Served};
use crate::http::{read_request, write_error, write_head_with, HttpLimits, ProtocolError, Request};
use crate::json::{obj, Json};
use autoax::CancelToken;
use autoax_exec::WorkerPool;
use autoax_telemetry as telemetry;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server construction knobs.
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Connection-handler threads.
    pub workers: usize,
    /// Bounded connection-queue depth beyond the running handlers.
    pub queue_depth: usize,
    /// Wire-format limits.
    pub http: HttpLimits,
    /// Engine knobs.
    pub engine: EngineConfig,
}

impl ServerConfig {
    /// Loopback server on an OS-assigned port over `cache_dir`.
    pub fn on_loopback(cache_dir: impl Into<std::path::PathBuf>) -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 16,
            http: HttpLimits::default(),
            engine: EngineConfig::new(cache_dir),
        }
    }
}

/// A running server: its address, engine handle and stop switch.
pub struct ServerHandle {
    addr: SocketAddr,
    engine: Arc<JobEngine>,
    shutdown: CancelToken,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine, for instrumentation (execution counters, stats).
    pub fn engine(&self) -> &Arc<JobEngine> {
        &self.engine
    }

    /// Graceful stop: no new connections, accepted ones drain, running
    /// pipelines cancel at their next boundary. Blocks until the
    /// acceptor (and through it the worker pool) has wound down.
    pub fn stop(mut self) {
        self.shutdown.cancel();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.cancel();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

/// Binds and starts serving on a background acceptor thread.
///
/// # Errors
/// Propagates the bind failure.
pub fn spawn(cfg: ServerConfig) -> io::Result<ServerHandle> {
    // A service process is always subscribed: its whole point is to be
    // observed, and the per-event cost is noise next to socket IO.
    telemetry::set_metrics(true);
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let engine = Arc::new(JobEngine::new(cfg.engine));
    let shutdown = engine.shutdown_token();
    let acceptor = {
        let engine = Arc::clone(&engine);
        let shutdown = shutdown.clone();
        let http = cfg.http;
        let (workers, queue_depth) = (cfg.workers, cfg.queue_depth);
        std::thread::Builder::new()
            .name("serve-accept".to_string())
            .spawn(move || accept_loop(listener, engine, shutdown, http, workers, queue_depth))?
    };
    Ok(ServerHandle {
        addr,
        engine,
        shutdown,
        acceptor: Some(acceptor),
    })
}

fn accept_loop(
    listener: TcpListener,
    engine: Arc<JobEngine>,
    shutdown: CancelToken,
    http: HttpLimits,
    workers: usize,
    queue_depth: usize,
) {
    let mut pool = WorkerPool::new(workers, queue_depth);
    while !shutdown.is_cancelled() {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let engine = Arc::clone(&engine);
                // A refused submit drops the closure — and the stream
                // inside it, which the client sees as a reset. Load is
                // shed at the door; the accept loop never stalls.
                let _ = pool.submit(move || handle_connection(stream, &engine, http));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    pool.shutdown();
}

/// Request id for a connection: echo the client's `X-Request-Id` if it
/// sent one (so ids correlate across proxies), otherwise mint a
/// process-unique `pid-sequence` id. No timestamps — ids must not
/// perturb determinism-sensitive code paths they get threaded through.
fn request_id(req: &Request) -> String {
    match req.header("x-request-id") {
        // Cap echoed ids: they go back out in a header and into NDJSON.
        Some(id) if !id.is_empty() && id.len() <= 128 => id.to_string(),
        _ => {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let seq = SEQ.fetch_add(1, Ordering::Relaxed);
            format!("{:08x}-{:08x}", std::process::id(), seq)
        }
    }
}

fn handle_connection(stream: TcpStream, engine: &Arc<JobEngine>, http: HttpLimits) {
    let read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let request = match read_request(&mut reader, &http) {
        Ok(r) => r,
        Err(e) => {
            if telemetry::metrics_enabled() {
                telemetry::counter_with("autoax_serve_requests_total", &[("route", "malformed")])
                    .inc();
            }
            let _ = write_error(&mut writer, &e);
            return;
        }
    };
    let track = telemetry::metrics_enabled();
    let t0 = track.then(std::time::Instant::now);
    let id = request_id(&request);
    // Write failures past this point mean the client disconnected
    // mid-stream; the job itself already ran (or was joined) and its
    // slots were released by `submit` returning, so we just stop writing.
    let _ = route(&mut writer, engine, &request, &id);
    let _ = writer.flush();
    if let Some(t0) = t0 {
        let route_label = match request.path.as_str() {
            "/health" | "/healthz" | "/stats" | "/metrics" | "/jobs" => request.path.as_str(),
            _ => "other",
        };
        telemetry::counter_with("autoax_serve_requests_total", &[("route", route_label)]).inc();
        telemetry::histogram_with("autoax_serve_request_ns", &[("route", route_label)])
            .record(t0.elapsed().as_nanos() as u64);
    }
}

fn route(w: &mut impl Write, engine: &Arc<JobEngine>, req: &Request, id: &str) -> io::Result<()> {
    let rid = [("X-Request-Id", id)];
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") | ("GET", "/healthz") => {
            write_head_with(w, 200, "OK", "application/json", &rid)?;
            writeln!(w, "{}", obj([("status", Json::Str("ok".into()))]))
        }
        ("GET", "/metrics") => {
            write_head_with(w, 200, "OK", "text/plain; version=0.0.4", &rid)?;
            w.write_all(telemetry::render_prometheus().as_bytes())
        }
        ("GET", "/stats") => {
            let s = engine.stats();
            write_head_with(w, 200, "OK", "application/json", &rid)?;
            writeln!(
                w,
                "{}",
                obj([
                    ("executions", Json::Num(s.executions as f64)),
                    ("dedup_waits", Json::Num(s.dedup_waits as f64)),
                    ("result_cache_hits", Json::Num(s.result_cache_hits as f64)),
                    ("store_lru_hits", Json::Num(s.store.lru_hits as f64)),
                    ("store_disk_hits", Json::Num(s.store.disk_hits as f64)),
                    ("store_misses", Json::Num(s.store.misses as f64)),
                    ("running", Json::Num(engine.running() as f64)),
                ])
            )
        }
        ("POST", "/jobs") => match submit(engine, req, id) {
            Ok(outcome) => stream_outcome(w, &outcome, id),
            Err(e) => write_error(w, &e),
        },
        _ => write_error(w, &ProtocolError::NotFound),
    }
}

fn submit(engine: &Arc<JobEngine>, req: &Request, id: &str) -> Result<JobOutcome, ProtocolError> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| ProtocolError::BadJson("body is not UTF-8".to_string()))?;
    let body = Json::parse(text).map_err(|e| ProtocolError::BadJson(e.to_string()))?;
    let mut job = JobRequest::from_json(&body)?;
    if let Some(tenant) = req.header("x-tenant") {
        // The header wins over the body field: proxies set it.
        job.tenant = tenant.to_string();
    }
    let mut sp = telemetry::span("serve.job");
    sp.field("request_id", id);
    sp.field("tenant", &job.tenant);
    let outcome = engine.submit(&job);
    match &outcome {
        Ok(ok) => sp.field(
            "served",
            match ok.served {
                Served::Computed => "computed",
                Served::Deduped => "deduped",
                Served::Cached => "cached",
            },
        ),
        Err(e) => sp.field("error", e),
    }
    outcome
}

/// NDJSON job response: an `accepted` event, one line per front member,
/// a `done` trailer carrying the digest. Both lifecycle events carry the
/// request id so a multiplexed log can be re-threaded per request.
fn stream_outcome(w: &mut impl Write, outcome: &JobOutcome, id: &str) -> io::Result<()> {
    let served = match outcome.served {
        Served::Computed => "computed",
        Served::Deduped => "deduped",
        Served::Cached => "cached",
    };
    if telemetry::metrics_enabled() {
        telemetry::counter_with("autoax_serve_jobs_total", &[("served", served)]).inc();
    }
    write_head_with(
        w,
        200,
        "OK",
        "application/x-ndjson",
        &[("X-Request-Id", id)],
    )?;
    writeln!(
        w,
        "{}",
        obj([
            ("event", Json::Str("accepted".into())),
            ("request_id", Json::Str(id.into())),
            ("served", Json::Str(served.into())),
            ("members", Json::Num(outcome.result.members.len() as f64)),
        ])
    )?;
    for m in &outcome.result.members {
        writeln!(
            w,
            "{}",
            obj([
                ("qor", Json::Num(m.qor)),
                ("area", Json::Num(m.area)),
                ("energy", Json::Num(m.energy)),
                (
                    "genes",
                    Json::Arr(m.genes.iter().map(|&g| Json::Num(g as f64)).collect())
                ),
            ])
        )?;
    }
    writeln!(
        w,
        "{}",
        obj([
            ("event", Json::Str("done".into())),
            ("request_id", Json::Str(id.into())),
            (
                "front_digest",
                Json::Str(format!("{:016x}", outcome.result.front_digest))
            ),
            ("qor_metric", Json::Str(outcome.result.qor_metric.clone())),
        ])
    )
}
