//! Single-flight deduplication: concurrent identical jobs collapse onto
//! one computation whose result fans out to every waiter.
//!
//! The API is deliberately **two-phase** so concurrency tests can be
//! deterministic: [`SingleFlight::begin`] registers interest and decides
//! leader vs. follower *without* running anything, and the leader then
//! publishes through [`Leader::complete`] / [`Leader::fail`]. A test can
//! rendezvous N threads between the two phases and assert that exactly
//! one of them computed.
//!
//! Cleanup guarantee: a [`Leader`] dropped without publishing (a panic in
//! the computation) marks the flight failed and wakes every follower —
//! waiters never hang on an abandoned slot, and the key is always
//! removed from the table so a retry starts a fresh flight.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};

enum FlightState<V> {
    Pending,
    Done(V),
    Failed(String),
}

struct Flight<V> {
    state: Mutex<FlightState<V>>,
    ready: Condvar,
}

/// The deduplication table. `V` is cloned once per follower; wrap large
/// results in an `Arc`.
pub struct SingleFlight<K: Eq + Hash + Clone, V: Clone> {
    inflight: Mutex<HashMap<K, Arc<Flight<V>>>>,
}

/// Outcome of [`SingleFlight::begin`].
pub enum Role<'a, K: Eq + Hash + Clone, V: Clone> {
    /// This caller runs the computation and must publish through the
    /// guard.
    Leader(Leader<'a, K, V>),
    /// Another caller is already running it; [`Follower::wait`] blocks
    /// for the published result.
    Follower(Follower<V>),
}

/// Obligation to publish: exactly one of [`Leader::complete`] /
/// [`Leader::fail`]; dropping unpublished fails the flight.
pub struct Leader<'a, K: Eq + Hash + Clone, V: Clone> {
    table: &'a SingleFlight<K, V>,
    key: K,
    flight: Arc<Flight<V>>,
    published: bool,
}

/// A handle on someone else's in-progress computation.
pub struct Follower<V: Clone> {
    flight: Arc<Flight<V>>,
}

impl<K: Eq + Hash + Clone, V: Clone> Default for SingleFlight<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone, V: Clone> SingleFlight<K, V> {
    /// An empty table.
    pub fn new() -> Self {
        SingleFlight {
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Registers interest in `key`: the first caller becomes the
    /// [`Role::Leader`], every concurrent caller a [`Role::Follower`] of
    /// that leader. Once the leader publishes, the key leaves the table
    /// and the next `begin` starts a fresh flight.
    pub fn begin(&self, key: K) -> Role<'_, K, V> {
        let mut map = self.inflight.lock().expect("single-flight lock poisoned");
        if let Some(flight) = map.get(&key) {
            return Role::Follower(Follower {
                flight: Arc::clone(flight),
            });
        }
        let flight = Arc::new(Flight {
            state: Mutex::new(FlightState::Pending),
            ready: Condvar::new(),
        });
        map.insert(key.clone(), Arc::clone(&flight));
        Role::Leader(Leader {
            table: self,
            key,
            flight,
            published: false,
        })
    }

    /// Keys currently in flight (tests and stats).
    pub fn in_flight(&self) -> usize {
        self.inflight
            .lock()
            .expect("single-flight lock poisoned")
            .len()
    }

    fn publish(&self, key: &K, flight: &Flight<V>, state: FlightState<V>) {
        // Remove first, then publish: a caller that misses the table
        // entry starts a fresh flight, which is correct — the result is
        // (or will be) also in the engine's result cache.
        self.inflight
            .lock()
            .expect("single-flight lock poisoned")
            .remove(key);
        *flight.state.lock().expect("flight lock poisoned") = state;
        flight.ready.notify_all();
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Leader<'_, K, V> {
    /// Publishes a success to every follower and retires the flight.
    pub fn complete(mut self, value: V) {
        self.published = true;
        self.table
            .publish(&self.key, &self.flight, FlightState::Done(value));
    }

    /// Publishes a failure to every follower and retires the flight.
    pub fn fail(mut self, error: String) {
        self.published = true;
        self.table
            .publish(&self.key, &self.flight, FlightState::Failed(error));
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Drop for Leader<'_, K, V> {
    fn drop(&mut self) {
        if !self.published {
            self.table.publish(
                &self.key,
                &self.flight,
                FlightState::Failed("the computation was abandoned by its leader".into()),
            );
        }
    }
}

impl<V: Clone> Follower<V> {
    /// Blocks until the leader publishes.
    ///
    /// # Errors
    /// The leader's [`Leader::fail`] message (or the abandonment message
    /// if the leader was dropped unpublished).
    pub fn wait(self) -> Result<V, String> {
        let mut state = self.flight.state.lock().expect("flight lock poisoned");
        loop {
            match &*state {
                FlightState::Pending => {
                    state = self.flight.ready.wait(state).expect("flight lock poisoned");
                }
                FlightState::Done(v) => return Ok(v.clone()),
                FlightState::Failed(e) => return Err(e.clone()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn leader_then_fresh_flight() {
        let sf: SingleFlight<u32, u64> = SingleFlight::new();
        match sf.begin(7) {
            Role::Leader(l) => l.complete(42),
            Role::Follower(_) => panic!("first begin must lead"),
        }
        assert_eq!(sf.in_flight(), 0);
        // Retired key → a new flight, not a stale follower.
        assert!(matches!(sf.begin(7), Role::Leader(_)));
    }

    #[test]
    fn followers_receive_the_leaders_value() {
        let sf: Arc<SingleFlight<u32, u64>> = Arc::new(SingleFlight::new());
        let n = 6;
        let barrier = Arc::new(Barrier::new(n + 1));
        let leaders = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..n {
            let (sf, barrier, leaders) = (sf.clone(), barrier.clone(), leaders.clone());
            handles.push(std::thread::spawn(move || match sf.begin(1) {
                Role::Leader(l) => {
                    leaders.fetch_add(1, Ordering::SeqCst);
                    barrier.wait(); // everyone has begun
                    l.complete(99);
                    99
                }
                Role::Follower(f) => {
                    barrier.wait();
                    f.wait().unwrap()
                }
            }));
        }
        barrier.wait();
        for h in handles {
            assert_eq!(h.join().unwrap(), 99);
        }
        assert_eq!(leaders.load(Ordering::SeqCst), 1, "exactly one leader");
        assert_eq!(sf.in_flight(), 0, "flight retired");
    }

    #[test]
    fn failure_fans_out() {
        let sf: Arc<SingleFlight<u32, u64>> = Arc::new(SingleFlight::new());
        let leader = match sf.begin(3) {
            Role::Leader(l) => l,
            Role::Follower(_) => unreachable!(),
        };
        let follower = match sf.begin(3) {
            Role::Follower(f) => f,
            Role::Leader(_) => panic!("pending key must follow"),
        };
        leader.fail("boom".into());
        assert_eq!(follower.wait(), Err("boom".into()));
    }

    #[test]
    fn abandoned_leader_cleans_up_and_unblocks_followers() {
        let sf: SingleFlight<u32, u64> = SingleFlight::new();
        let leader = match sf.begin(5) {
            Role::Leader(l) => l,
            Role::Follower(_) => unreachable!(),
        };
        let follower = match sf.begin(5) {
            Role::Follower(f) => f,
            Role::Leader(_) => unreachable!(),
        };
        drop(leader); // simulates a panic in the computation
        let err = follower.wait().unwrap_err();
        assert!(err.contains("abandoned"), "{err}");
        assert_eq!(sf.in_flight(), 0, "abandoned slot must not leak");
    }

    #[test]
    fn distinct_keys_fly_independently() {
        let sf: SingleFlight<u32, u64> = SingleFlight::new();
        let a = match sf.begin(1) {
            Role::Leader(l) => l,
            _ => unreachable!(),
        };
        let b = match sf.begin(2) {
            Role::Leader(l) => l,
            _ => unreachable!(),
        };
        assert_eq!(sf.in_flight(), 2);
        a.complete(1);
        b.complete(2);
        assert_eq!(sf.in_flight(), 0);
    }
}
