//! Content-addressed on-disk cache: keys, modes and the atomic file
//! store.
//!
//! A [`CacheKey`] is a 128-bit digest of *everything that determines the
//! cached artifact* — configuration fields, input content fingerprints and
//! a format-version salt, so a codec change silently retires old entries
//! instead of misreading them. Writes go through a temp-file + rename so a
//! crashed run never leaves a torn blob behind; corrupt files are detected
//! by the container checksum and reported as [`Loaded::Rejected`], which
//! callers treat as a miss.

use crate::container::{self, FORMAT_VERSION};
use crate::StoreError;
use autoax_telemetry::{self as telemetry, ax_warn};
use std::path::{Path, PathBuf};

/// Records one disk-load outcome under the store's metric taxonomy:
/// `autoax_store_loads_total{kind,result}` plus an
/// `autoax_store_load_ns{kind}` latency sample. Only called when the
/// registry is subscribed; the label lookup cost is noise next to the
/// `fs::read` it annotates.
fn record_load(kind: &str, result: &'static str, ns: u64) {
    telemetry::counter_with(
        "autoax_store_loads_total",
        &[("kind", kind), ("result", result)],
    )
    .inc();
    telemetry::histogram_with("autoax_store_load_ns", &[("kind", kind)]).record(ns);
}

fn record_save(kind: &str, result: &'static str, ns: u64) {
    telemetry::counter_with(
        "autoax_store_saves_total",
        &[("kind", kind), ("result", result)],
    )
    .inc();
    telemetry::histogram_with("autoax_store_save_ns", &[("kind", kind)]).record(ns);
}

/// How a pipeline interacts with the on-disk cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// Never touch the cache (the default).
    #[default]
    Off,
    /// Read existing entries, never write new ones (useful for shared
    /// read-only artifact directories).
    Read,
    /// Read existing entries and write missing ones.
    ReadWrite,
}

impl CacheMode {
    /// True when lookups should be attempted.
    pub fn reads(self) -> bool {
        !matches!(self, CacheMode::Off)
    }

    /// True when missing entries should be written back.
    pub fn writes(self) -> bool {
        matches!(self, CacheMode::ReadWrite)
    }

    /// Parses a CLI flag value (`off`, `read`, `rw`/`read-write`).
    pub fn parse(s: &str) -> Option<CacheMode> {
        match s {
            "off" => Some(CacheMode::Off),
            "read" => Some(CacheMode::Read),
            "rw" | "read-write" | "readwrite" => Some(CacheMode::ReadWrite),
            _ => None,
        }
    }
}

impl std::fmt::Display for CacheMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheMode::Off => write!(f, "off"),
            CacheMode::Read => write!(f, "read"),
            CacheMode::ReadWrite => write!(f, "rw"),
        }
    }
}

/// Parses the standard warm-start CLI flags from an argument list:
/// `--cache-dir <path>` / `--cache-dir=<path>` and
/// `--cache off|read|rw` / `--cache=<mode>`.
///
/// `--cache-dir` alone implies [`CacheMode::ReadWrite`] (the common
/// "just make repeat runs fast" intent); without a directory caching is
/// off regardless of mode. An unrecognized mode value warns through the
/// leveled logger (visible with `AUTOAX_LOG=warn`) and disables caching
/// entirely — a typo must not silently enable (or keep) cache reads the
/// user asked to turn off.
///
/// This is the single flag parser shared by the examples and the bench
/// binaries, so every entry point accepts the same syntax.
pub fn parse_cache_flags(args: &[String]) -> (Option<PathBuf>, CacheMode) {
    let mut dir: Option<PathBuf> = None;
    let mut mode: Option<CacheMode> = None;
    let mut bad_mode = false;
    let mut set_mode = |s: &str| match CacheMode::parse(s) {
        Some(m) => Some(m),
        None => {
            ax_warn!("unknown cache mode `{s}`, caching disabled");
            bad_mode = true;
            None
        }
    };
    for (i, a) in args.iter().enumerate() {
        if let Some(rest) = a.strip_prefix("--cache-dir=") {
            dir = Some(PathBuf::from(rest));
        } else if a == "--cache-dir" {
            dir = args.get(i + 1).map(PathBuf::from);
        } else if let Some(rest) = a.strip_prefix("--cache=") {
            mode = set_mode(rest);
        } else if a == "--cache" {
            mode = args.get(i + 1).and_then(|v| set_mode(v));
        }
    }
    if bad_mode {
        return (None, CacheMode::Off);
    }
    match dir {
        Some(d) => (Some(d), mode.unwrap_or(CacheMode::ReadWrite)),
        None => (None, CacheMode::Off),
    }
}

/// A 128-bit content-address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// High 64 bits.
    pub hi: u64,
    /// Low 64 bits.
    pub lo: u64,
}

impl CacheKey {
    /// Lower-case hex rendering (32 chars), used in file names.
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Incremental key hasher: two independent FNV-1a 64 lanes (different
/// offset bases, the second lane additionally length-prefixes every field)
/// giving a 128-bit digest. Not cryptographic — collision *accidents* are
/// what matters for a cache, and 128 bits of mixed state makes them
/// negligible.
#[derive(Debug, Clone)]
pub struct KeyHasher {
    a: u64,
    b: u64,
}

impl KeyHasher {
    /// A new hasher for a named artifact domain, salted with the store
    /// format version (so codec changes retire old entries) and the
    /// domain string (so a library key can never alias a pipeline key).
    pub fn new(domain: &str) -> Self {
        let mut h = KeyHasher {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0x6c62_272e_07bb_0142, // distinct offset basis for lane b
        };
        h.write_u64(FORMAT_VERSION as u64);
        h.write_str(domain);
        h
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &x in bytes {
            self.a ^= x as u64;
            self.a = self.a.wrapping_mul(0x100_0000_01b3);
        }
        // lane b: length-prefixed so field boundaries cannot alias
        for &x in (bytes.len() as u64).to_le_bytes().iter().chain(bytes) {
            self.b ^= x as u64;
            self.b = self.b.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Feeds a `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds an `f64` by bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Feeds a string.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// Feeds an optional `u64` (presence is part of the digest).
    pub fn write_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.write_u64(1);
                self.write_u64(x);
            }
            None => self.write_u64(0),
        }
    }

    /// Finalizes into a key.
    pub fn finish(&self) -> CacheKey {
        // one avalanche round per lane so short inputs spread
        let mix = |mut z: u64| {
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        CacheKey {
            hi: mix(self.a),
            lo: mix(self.b),
        }
    }
}

/// Outcome of a cache lookup.
#[derive(Debug)]
pub enum Loaded {
    /// A valid blob was found; the payload is returned.
    Hit(Vec<u8>),
    /// No file exists for the key.
    Miss,
    /// A file exists but failed validation (corrupt, truncated, wrong
    /// version or tag) or could not be read. Callers recompute; in
    /// read-write mode the entry is overwritten with a fresh one.
    Rejected(StoreError),
}

impl Loaded {
    /// The payload of a hit, if any.
    pub fn into_hit(self) -> Option<Vec<u8>> {
        match self {
            Loaded::Hit(p) => Some(p),
            _ => None,
        }
    }
}

/// Anything that can load and save sealed, content-addressed blobs — the
/// seam between the pipeline's warm-start logic and the storage topology
/// behind it.
///
/// [`Store`] is the plain one-directory implementation;
/// [`crate::sharded::ShardedStore`] is the service tier's concurrent
/// implementation (key-prefix shards with per-shard locks plus an
/// in-memory LRU over the disk files). `autoax::pipeline::run_pipeline`
/// accepts a shared `Arc<dyn BlobStore>`, so N concurrent tenants can
/// warm-start Steps 1–2 from one process-wide store.
pub trait BlobStore: Send + Sync + std::fmt::Debug {
    /// Looks an entry up, validating the container. Semantics of
    /// [`Store::load`].
    fn load_blob(&self, kind: &str, key: CacheKey, tag: [u8; 4]) -> Loaded;

    /// Seals and persists an entry (atomic with respect to concurrent
    /// readers of the same key).
    ///
    /// # Errors
    /// Propagates filesystem errors; the destination is never left torn.
    fn save_blob(
        &self,
        kind: &str,
        key: CacheKey,
        tag: [u8; 4],
        payload: Vec<u8>,
    ) -> Result<(), StoreError>;
}

impl BlobStore for Store {
    fn load_blob(&self, kind: &str, key: CacheKey, tag: [u8; 4]) -> Loaded {
        self.load(kind, key, tag)
    }

    fn save_blob(
        &self,
        kind: &str,
        key: CacheKey,
        tag: [u8; 4],
        payload: Vec<u8>,
    ) -> Result<(), StoreError> {
        self.save(kind, key, tag, payload).map(|_| ())
    }
}

/// A directory of sealed, content-addressed blobs.
#[derive(Debug, Clone)]
pub struct Store {
    dir: PathBuf,
}

impl Store {
    /// A store rooted at `dir` (created lazily on first write).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Store { dir: dir.into() }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// File path of an entry: `<dir>/<kind>-<keyhex>.axbin`.
    pub fn entry_path(&self, kind: &str, key: CacheKey) -> PathBuf {
        self.dir.join(format!("{kind}-{}.axbin", key.hex()))
    }

    /// Looks an entry up, validating the container (magic, checksum,
    /// version, tag). Never panics and never returns unvalidated bytes.
    pub fn load(&self, kind: &str, key: CacheKey, tag: [u8; 4]) -> Loaded {
        let t0 = telemetry::metrics_enabled().then(std::time::Instant::now);
        let loaded = self.load_inner(kind, key, tag);
        if let Some(t0) = t0 {
            let result = match &loaded {
                Loaded::Hit(_) => "hit",
                Loaded::Miss => "miss",
                Loaded::Rejected(_) => "rejected",
            };
            record_load(kind, result, t0.elapsed().as_nanos() as u64);
        }
        loaded
    }

    fn load_inner(&self, kind: &str, key: CacheKey, tag: [u8; 4]) -> Loaded {
        let path = self.entry_path(kind, key);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Loaded::Miss,
            Err(e) => return Loaded::Rejected(e.into()),
        };
        match container::unseal(&bytes, tag) {
            Ok(payload) => Loaded::Hit(payload.to_vec()),
            Err(e) => Loaded::Rejected(e),
        }
    }

    /// Seals and writes an entry atomically (temp file + rename), creating
    /// the directory on demand.
    ///
    /// # Errors
    /// Propagates filesystem errors; the destination is never left torn.
    pub fn save(
        &self,
        kind: &str,
        key: CacheKey,
        tag: [u8; 4],
        payload: Vec<u8>,
    ) -> Result<PathBuf, StoreError> {
        let t0 = telemetry::metrics_enabled().then(std::time::Instant::now);
        let saved = self.save_inner(kind, key, tag, payload);
        if let Some(t0) = t0 {
            let result = if saved.is_ok() { "ok" } else { "error" };
            record_save(kind, result, t0.elapsed().as_nanos() as u64);
        }
        saved
    }

    fn save_inner(
        &self,
        kind: &str,
        key: CacheKey,
        tag: [u8; 4],
        payload: Vec<u8>,
    ) -> Result<PathBuf, StoreError> {
        std::fs::create_dir_all(&self.dir)?;
        let blob = container::seal(tag, payload);
        let path = self.entry_path(kind, key);
        let tmp = self
            .dir
            .join(format!(".{kind}-{}.{}.tmp", key.hex(), std::process::id()));
        std::fs::write(&tmp, &blob)?;
        match std::fs::rename(&tmp, &path) {
            Ok(()) => Ok(path),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e.into())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(name: &str) -> Store {
        let dir =
            std::env::temp_dir().join(format!("autoax-store-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Store::new(dir)
    }

    fn key(n: u64) -> CacheKey {
        let mut h = KeyHasher::new("test");
        h.write_u64(n);
        h.finish()
    }

    #[test]
    fn save_then_load_hits() {
        let s = temp_store("hit");
        let k = key(1);
        s.save("unit", k, *b"UNIT", vec![1, 2, 3]).unwrap();
        match s.load("unit", k, *b"UNIT") {
            Loaded::Hit(p) => assert_eq!(p, vec![1, 2, 3]),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn missing_entry_is_miss() {
        let s = temp_store("miss");
        assert!(matches!(s.load("unit", key(2), *b"UNIT"), Loaded::Miss));
    }

    #[test]
    fn corrupt_entry_is_rejected() {
        let s = temp_store("corrupt");
        let k = key(3);
        let path = s.save("unit", k, *b"UNIT", vec![7; 64]).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, bytes).unwrap();
        assert!(matches!(
            s.load("unit", k, *b"UNIT"),
            Loaded::Rejected(StoreError::Checksum)
        ));
    }

    #[test]
    fn wrong_tag_is_rejected() {
        let s = temp_store("tag");
        let k = key(4);
        s.save("unit", k, *b"AAAA", vec![1]).unwrap();
        assert!(matches!(
            s.load("unit", k, *b"BBBB"),
            Loaded::Rejected(StoreError::Tag { .. })
        ));
    }

    #[test]
    fn keys_separate_domains_and_fields() {
        let a = KeyHasher::new("library").finish();
        let b = KeyHasher::new("pipeline").finish();
        assert_ne!(a, b);
        // field-boundary aliasing: ("ab","c") vs ("a","bc")
        let mut h1 = KeyHasher::new("x");
        h1.write_str("ab");
        h1.write_str("c");
        let mut h2 = KeyHasher::new("x");
        h2.write_str("a");
        h2.write_str("bc");
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn cli_flag_parsing() {
        let to_args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        // dir alone implies read-write
        let (dir, mode) = parse_cache_flags(&to_args(&["bin", "--cache-dir", "d"]));
        assert_eq!(dir, Some(PathBuf::from("d")));
        assert_eq!(mode, CacheMode::ReadWrite);
        // `=` forms and explicit mode
        let (dir, mode) = parse_cache_flags(&to_args(&["bin", "--cache-dir=x", "--cache=read"]));
        assert_eq!(dir, Some(PathBuf::from("x")));
        assert_eq!(mode, CacheMode::Read);
        // no dir -> off, whatever the mode says
        let (dir, mode) = parse_cache_flags(&to_args(&["bin", "--cache", "rw"]));
        assert_eq!(dir, None);
        assert_eq!(mode, CacheMode::Off);
        // a bad mode disables caching entirely (never silently falls
        // back to read-write)
        let (dir, mode) =
            parse_cache_flags(&to_args(&["bin", "--cache-dir", "d", "--cache", "bogus"]));
        assert_eq!(dir, None);
        assert_eq!(mode, CacheMode::Off);
        // no flags at all
        let (dir, mode) = parse_cache_flags(&to_args(&["bin"]));
        assert_eq!(dir, None);
        assert_eq!(mode, CacheMode::Off);
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(CacheMode::parse("off"), Some(CacheMode::Off));
        assert_eq!(CacheMode::parse("read"), Some(CacheMode::Read));
        assert_eq!(CacheMode::parse("rw"), Some(CacheMode::ReadWrite));
        assert_eq!(CacheMode::parse("read-write"), Some(CacheMode::ReadWrite));
        assert_eq!(CacheMode::parse("bogus"), None);
        assert!(CacheMode::ReadWrite.reads() && CacheMode::ReadWrite.writes());
        assert!(CacheMode::Read.reads() && !CacheMode::Read.writes());
        assert!(!CacheMode::Off.reads());
    }
}
