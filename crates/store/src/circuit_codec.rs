//! Codec for the circuit layer: behaviours, netlists and the per-circuit
//! error/hardware characterization tables — everything needed to
//! round-trip a characterized [`ComponentLibrary`] without re-running
//! characterization.
//!
//! Floats (WMED, area, error statistics) are stored as IEEE-754 bit
//! patterns, so a decoded library is indistinguishable from the one that
//! was encoded: every downstream computation (feature construction, model
//! fitting, search) produces bitwise identical results.

use crate::codec::{Decoder, Encoder};
use crate::StoreError;
use autoax_circuit::approx::adders::AdderKind;
use autoax_circuit::approx::muls::MulKind;
use autoax_circuit::approx::subs::SubKind;
use autoax_circuit::approx::{Behavior, FaCell};
use autoax_circuit::charlib::{CircuitEntry, CircuitId, ComponentLibrary};
use autoax_circuit::{CellKind, ErrorMetrics, HwReport, Netlist, OpKind, OpSignature};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// leaf types
// ---------------------------------------------------------------------------

/// Encodes an operation signature (kind + operand widths).
pub fn put_signature(e: &mut Encoder, sig: OpSignature) {
    e.put_u8(match sig.kind {
        OpKind::Add => 0,
        OpKind::Sub => 1,
        OpKind::Mul => 2,
    });
    e.put_u8(sig.width_a);
    e.put_u8(sig.width_b);
}

/// Decodes an operation signature.
pub fn take_signature(d: &mut Decoder<'_>) -> Result<OpSignature, StoreError> {
    let kind = match d.take_u8()? {
        0 => OpKind::Add,
        1 => OpKind::Sub,
        2 => OpKind::Mul,
        t => return Err(StoreError::Invalid(format!("bad op kind tag {t}"))),
    };
    let wa = d.take_u8()?;
    let wb = d.take_u8()?;
    Ok(OpSignature::new(kind, wa, wb))
}

fn put_cell_kind(e: &mut Encoder, kind: CellKind) {
    let idx = CellKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("CellKind::ALL is exhaustive");
    e.put_u8(idx as u8);
}

fn take_cell_kind(d: &mut Decoder<'_>) -> Result<CellKind, StoreError> {
    let idx = d.take_u8()? as usize;
    CellKind::ALL
        .get(idx)
        .copied()
        .ok_or_else(|| StoreError::Invalid(format!("bad cell kind index {idx}")))
}

fn put_fa_cell(e: &mut Encoder, c: FaCell) {
    e.put_u8(c.sum);
    e.put_u8(c.carry);
}

fn take_fa_cell(d: &mut Decoder<'_>) -> Result<FaCell, StoreError> {
    Ok(FaCell {
        sum: d.take_u8()?,
        carry: d.take_u8()?,
    })
}

fn put_fa_cells(e: &mut Encoder, cells: &[FaCell]) {
    e.put_len(cells.len());
    for &c in cells {
        put_fa_cell(e, c);
    }
}

fn take_fa_cells(d: &mut Decoder<'_>) -> Result<Arc<[FaCell]>, StoreError> {
    let n = d.take_len()?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(take_fa_cell(d)?);
    }
    Ok(v.into())
}

/// Encodes a gate-level netlist (name, inputs, gates, outputs).
pub fn put_netlist(e: &mut Encoder, n: &Netlist) {
    e.put_str(n.name());
    e.put_u32(n.input_count() as u32);
    e.put_len(n.gates().len());
    for g in n.gates() {
        put_cell_kind(e, g.kind);
        for i in 0..3 {
            e.put_u32(g.ins[i].0);
        }
    }
    e.put_len(n.outputs().len());
    for o in n.outputs() {
        e.put_u32(o.0);
    }
}

/// Decodes a netlist, validating net references so malformed data yields
/// an error rather than a builder panic.
pub fn take_netlist(d: &mut Decoder<'_>) -> Result<Netlist, StoreError> {
    use autoax_circuit::netlist::NetId;
    let name = d.take_str()?;
    let n_inputs = d.take_u32()?;
    let mut out = Netlist::new(name);
    for _ in 0..n_inputs {
        out.input();
    }
    let n_gates = d.take_len()?;
    for gi in 0..n_gates {
        let kind = take_cell_kind(d)?;
        let mut ins = [NetId(0); 3];
        for slot in &mut ins {
            *slot = NetId(d.take_u32()?);
        }
        let next = n_inputs as u64 + gi as u64;
        for slot in ins.iter().take(kind.arity()) {
            if slot.0 as u64 >= next {
                return Err(StoreError::Invalid(format!(
                    "gate {gi} references future net {}",
                    slot.0
                )));
            }
        }
        // Unused input slots are conventional but must still be in range
        // for `push` (it only asserts used slots; keep them valid anyway).
        for slot in ins.iter_mut().skip(kind.arity()) {
            if slot.0 as u64 >= next.max(1) {
                *slot = NetId(0);
            }
        }
        out.push(kind, ins);
    }
    let n_outs = d.take_len()?;
    let net_count = out.net_count() as u32;
    let mut outputs = Vec::with_capacity(n_outs);
    for _ in 0..n_outs {
        let o = d.take_u32()?;
        if o >= net_count {
            return Err(StoreError::Invalid(format!("output references net {o}")));
        }
        outputs.push(NetId(o));
    }
    out.set_outputs(outputs);
    Ok(out)
}

// ---------------------------------------------------------------------------
// behaviour kinds
// ---------------------------------------------------------------------------

fn put_adder_kind(e: &mut Encoder, k: &AdderKind) {
    match k {
        AdderKind::Exact => e.put_u8(0),
        AdderKind::ExactCla => e.put_u8(1),
        AdderKind::TruncZero { k } => {
            e.put_u8(2);
            e.put_u32(*k);
        }
        AdderKind::TruncPass { k } => {
            e.put_u8(3);
            e.put_u32(*k);
        }
        AdderKind::Loa { k } => {
            e.put_u8(4);
            e.put_u32(*k);
        }
        AdderKind::XorLower { k } => {
            e.put_u8(5);
            e.put_u32(*k);
        }
        AdderKind::Aca { r } => {
            e.put_u8(6);
            e.put_u32(*r);
        }
        AdderKind::Gear { r, p } => {
            e.put_u8(7);
            e.put_u32(*r);
            e.put_u32(*p);
        }
        AdderKind::Seg { segs, speculate } => {
            e.put_u8(8);
            e.put_bytes(segs);
            e.put_bool(*speculate);
        }
        AdderKind::CellRipple { cells } => {
            e.put_u8(9);
            put_fa_cells(e, cells);
        }
    }
}

fn take_adder_kind(d: &mut Decoder<'_>) -> Result<AdderKind, StoreError> {
    Ok(match d.take_u8()? {
        0 => AdderKind::Exact,
        1 => AdderKind::ExactCla,
        2 => AdderKind::TruncZero { k: d.take_u32()? },
        3 => AdderKind::TruncPass { k: d.take_u32()? },
        4 => AdderKind::Loa { k: d.take_u32()? },
        5 => AdderKind::XorLower { k: d.take_u32()? },
        6 => AdderKind::Aca { r: d.take_u32()? },
        7 => AdderKind::Gear {
            r: d.take_u32()?,
            p: d.take_u32()?,
        },
        8 => AdderKind::Seg {
            segs: d.take_bytes()?.to_vec(),
            speculate: d.take_bool()?,
        },
        9 => AdderKind::CellRipple {
            cells: take_fa_cells(d)?,
        },
        t => return Err(StoreError::Invalid(format!("bad adder kind tag {t}"))),
    })
}

fn put_sub_kind(e: &mut Encoder, k: &SubKind) {
    match k {
        SubKind::Exact => e.put_u8(0),
        SubKind::TruncZero { k } => {
            e.put_u8(1);
            e.put_u32(*k);
        }
        SubKind::TruncPass { k } => {
            e.put_u8(2);
            e.put_u32(*k);
        }
        SubKind::XorLower { k } => {
            e.put_u8(3);
            e.put_u32(*k);
        }
        SubKind::Seg { segs } => {
            e.put_u8(4);
            e.put_bytes(segs);
        }
        SubKind::CellRipple { cells } => {
            e.put_u8(5);
            put_fa_cells(e, cells);
        }
    }
}

fn take_sub_kind(d: &mut Decoder<'_>) -> Result<SubKind, StoreError> {
    Ok(match d.take_u8()? {
        0 => SubKind::Exact,
        1 => SubKind::TruncZero { k: d.take_u32()? },
        2 => SubKind::TruncPass { k: d.take_u32()? },
        3 => SubKind::XorLower { k: d.take_u32()? },
        4 => SubKind::Seg {
            segs: d.take_bytes()?.to_vec(),
        },
        5 => SubKind::CellRipple {
            cells: take_fa_cells(d)?,
        },
        t => return Err(StoreError::Invalid(format!("bad sub kind tag {t}"))),
    })
}

fn put_mul_kind(e: &mut Encoder, k: &MulKind) {
    match k {
        MulKind::Exact => e.put_u8(0),
        MulKind::ExactWallace => e.put_u8(1),
        MulKind::Bam { vbl, hbl } => {
            e.put_u8(2);
            e.put_u32(*vbl);
            e.put_u32(*hbl);
        }
        MulKind::Trunc { k, comp } => {
            e.put_u8(3);
            e.put_u32(*k);
            e.put_bool(*comp);
        }
        MulKind::PerfRows { row_mask } => {
            e.put_u8(4);
            e.put_u16(*row_mask);
        }
        MulKind::Udm { leaf_mask } => {
            e.put_u8(5);
            e.put_u16(*leaf_mask);
        }
        MulKind::CellGrid { cells } => {
            e.put_u8(6);
            put_fa_cells(e, cells);
        }
    }
}

fn take_mul_kind(d: &mut Decoder<'_>) -> Result<MulKind, StoreError> {
    Ok(match d.take_u8()? {
        0 => MulKind::Exact,
        1 => MulKind::ExactWallace,
        2 => MulKind::Bam {
            vbl: d.take_u32()?,
            hbl: d.take_u32()?,
        },
        3 => MulKind::Trunc {
            k: d.take_u32()?,
            comp: d.take_bool()?,
        },
        4 => MulKind::PerfRows {
            row_mask: d.take_u16()?,
        },
        5 => MulKind::Udm {
            leaf_mask: d.take_u16()?,
        },
        6 => MulKind::CellGrid {
            cells: take_fa_cells(d)?,
        },
        t => return Err(StoreError::Invalid(format!("bad mul kind tag {t}"))),
    })
}

/// Encodes a circuit behaviour (functional model + netlist recipe).
pub fn put_behavior(e: &mut Encoder, b: &Behavior) {
    match b {
        Behavior::Adder { w, kind } => {
            e.put_u8(0);
            e.put_u32(*w);
            put_adder_kind(e, kind);
        }
        Behavior::Subtractor { w, kind } => {
            e.put_u8(1);
            e.put_u32(*w);
            put_sub_kind(e, kind);
        }
        Behavior::Multiplier { wa, wb, kind } => {
            e.put_u8(2);
            e.put_u32(*wa);
            e.put_u32(*wb);
            put_mul_kind(e, kind);
        }
        Behavior::Raw { sig, netlist } => {
            e.put_u8(3);
            put_signature(e, *sig);
            put_netlist(e, netlist);
        }
    }
}

/// Decodes a circuit behaviour.
pub fn take_behavior(d: &mut Decoder<'_>) -> Result<Behavior, StoreError> {
    Ok(match d.take_u8()? {
        0 => Behavior::Adder {
            w: d.take_u32()?,
            kind: take_adder_kind(d)?,
        },
        1 => Behavior::Subtractor {
            w: d.take_u32()?,
            kind: take_sub_kind(d)?,
        },
        2 => Behavior::Multiplier {
            wa: d.take_u32()?,
            wb: d.take_u32()?,
            kind: take_mul_kind(d)?,
        },
        3 => Behavior::Raw {
            sig: take_signature(d)?,
            netlist: Arc::new(take_netlist(d)?),
        },
        t => return Err(StoreError::Invalid(format!("bad behavior tag {t}"))),
    })
}

// ---------------------------------------------------------------------------
// characterization tables
// ---------------------------------------------------------------------------

/// Encodes the error characterization table of one circuit.
pub fn put_error_metrics(e: &mut Encoder, m: &ErrorMetrics) {
    e.put_f64(m.mae);
    e.put_u64(m.wce);
    e.put_f64(m.er);
    e.put_f64(m.mse);
    e.put_f64(m.var_ed);
    e.put_f64(m.mre);
    e.put_u64(m.samples);
}

/// Decodes an error characterization table.
pub fn take_error_metrics(d: &mut Decoder<'_>) -> Result<ErrorMetrics, StoreError> {
    Ok(ErrorMetrics {
        mae: d.take_f64()?,
        wce: d.take_u64()?,
        er: d.take_f64()?,
        mse: d.take_f64()?,
        var_ed: d.take_f64()?,
        mre: d.take_f64()?,
        samples: d.take_u64()?,
    })
}

/// Encodes a hardware report.
pub fn put_hw_report(e: &mut Encoder, h: &HwReport) {
    e.put_f64(h.area);
    e.put_f64(h.delay);
    e.put_f64(h.power);
    e.put_f64(h.energy);
    e.put_u64(h.cells as u64);
}

/// Decodes a hardware report.
pub fn take_hw_report(d: &mut Decoder<'_>) -> Result<HwReport, StoreError> {
    Ok(HwReport {
        area: d.take_f64()?,
        delay: d.take_f64()?,
        power: d.take_f64()?,
        energy: d.take_f64()?,
        cells: d.take_u64()? as usize,
    })
}

/// Encodes one fully characterized library circuit.
pub fn put_circuit_entry(e: &mut Encoder, entry: &CircuitEntry) {
    e.put_u32(entry.id.0);
    put_behavior(e, &entry.behavior);
    e.put_str(&entry.label);
    put_hw_report(e, &entry.hw);
    put_error_metrics(e, &entry.err);
}

/// Decodes a library circuit.
pub fn take_circuit_entry(d: &mut Decoder<'_>) -> Result<CircuitEntry, StoreError> {
    Ok(CircuitEntry {
        id: CircuitId(d.take_u32()?),
        behavior: take_behavior(d)?,
        label: d.take_str()?,
        hw: take_hw_report(d)?,
        err: take_error_metrics(d)?,
    })
}

// ---------------------------------------------------------------------------
// whole libraries
// ---------------------------------------------------------------------------

/// Encodes a characterized component library (all classes, all entries,
/// with their characterization tables).
pub fn put_library(e: &mut Encoder, lib: &ComponentLibrary) {
    let sigs: Vec<OpSignature> = lib.signatures().collect();
    e.put_len(sigs.len());
    for sig in sigs {
        put_signature(e, sig);
        let class = lib.class(sig);
        e.put_len(class.len());
        for entry in class {
            put_circuit_entry(e, entry);
        }
    }
}

/// Decodes a characterized component library.
pub fn take_library(d: &mut Decoder<'_>) -> Result<ComponentLibrary, StoreError> {
    let n_classes = d.take_len()?;
    let mut lib = ComponentLibrary::default();
    for _ in 0..n_classes {
        let sig = take_signature(d)?;
        let n = d.take_len()?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push(take_circuit_entry(d)?);
        }
        lib.insert_class(sig, entries);
    }
    Ok(lib)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoax_circuit::charlib::{build_class, LibraryConfig};

    fn round_trip_behavior(b: &Behavior) -> Behavior {
        let mut e = Encoder::new();
        put_behavior(&mut e, b);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let out = take_behavior(&mut d).unwrap();
        d.finish().unwrap();
        out
    }

    #[test]
    fn structured_behaviors_round_trip_exactly() {
        let cases = vec![
            Behavior::Adder {
                w: 8,
                kind: AdderKind::Gear { r: 2, p: 3 },
            },
            Behavior::Adder {
                w: 9,
                kind: AdderKind::Seg {
                    segs: vec![3, 3, 3],
                    speculate: true,
                },
            },
            Behavior::Subtractor {
                w: 10,
                kind: SubKind::CellRipple {
                    cells: vec![FaCell::EXACT_FS; 10].into(),
                },
            },
            Behavior::Multiplier {
                wa: 8,
                wb: 8,
                kind: MulKind::Bam { vbl: 5, hbl: 2 },
            },
        ];
        for b in cases {
            assert_eq!(round_trip_behavior(&b), b);
        }
    }

    #[test]
    fn raw_netlist_behavior_round_trips_functionally() {
        let sig = OpSignature::ADD8;
        let b = Behavior::Raw {
            sig,
            netlist: Arc::new(Behavior::exact_for(sig).build_netlist()),
        };
        let rt = round_trip_behavior(&b);
        assert_eq!(rt, b);
        for a in [0u64, 3, 200, 255] {
            assert_eq!(rt.eval(a, 77), b.eval(a, 77));
        }
    }

    #[test]
    fn characterized_class_round_trips_bitwise() {
        let cfg = LibraryConfig::tiny();
        let entries = build_class(OpSignature::ADD8, 30, &cfg, 11);
        let mut lib = ComponentLibrary::default();
        lib.insert_class(OpSignature::ADD8, entries);
        let mut e = Encoder::new();
        put_library(&mut e, &lib);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let rt = take_library(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(rt.class_size(OpSignature::ADD8), 30);
        for (a, b) in lib
            .class(OpSignature::ADD8)
            .iter()
            .zip(rt.class(OpSignature::ADD8))
        {
            assert_eq!(a.id, b.id);
            assert_eq!(a.behavior, b.behavior);
            assert_eq!(a.label, b.label);
            assert_eq!(a.hw.area.to_bits(), b.hw.area.to_bits());
            assert_eq!(a.hw.energy.to_bits(), b.hw.energy.to_bits());
            assert_eq!(a.err.mae.to_bits(), b.err.mae.to_bits());
            assert_eq!(a.err.wce, b.err.wce);
            assert_eq!(a.err.samples, b.err.samples);
        }
    }

    #[test]
    fn bad_tags_are_invalid_not_panics() {
        let bytes = [200u8, 0, 0, 0, 0];
        let mut d = Decoder::new(&bytes);
        assert!(take_behavior(&mut d).is_err());
        let mut d2 = Decoder::new(&bytes);
        assert!(take_signature(&mut d2).is_err());
    }
}
