//! Little-endian primitive encoder/decoder — the byte-level substrate of
//! every stored artifact.
//!
//! The format is deliberately boring: fixed-width little-endian integers,
//! IEEE-754 bit patterns for floats (so round-trips are *bitwise* exact,
//! which the warm-start guarantee depends on), and length-prefixed byte
//! strings. No varints, no alignment, no reflection.

use crate::StoreError;

/// Append-only byte encoder.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// A new empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Consumes the encoder, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` as its IEEE-754 bit pattern (bitwise exact,
    /// including NaN payloads and signed zeros).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Writes a collection length (as `u64`).
    pub fn put_len(&mut self, n: usize) {
        self.put_u64(n as u64);
    }

    /// Writes a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_len(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Sequential byte decoder over a borrowed slice.
///
/// Every `take_*` returns [`StoreError::Truncated`] instead of panicking
/// when the stream ends early.
#[derive(Debug)]
pub struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        Decoder { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Errors unless the stream was fully consumed (catches blobs with
    /// trailing garbage that still checksum-validate as a whole).
    pub fn finish(self) -> Result<(), StoreError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(StoreError::Invalid(format!(
                "{} unconsumed trailing bytes",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn take_u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a `u32`.
    pub fn take_u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn take_u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a `bool`; any byte other than 0/1 is invalid.
    pub fn take_bool(&mut self) -> Result<bool, StoreError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(StoreError::Invalid(format!("bad bool byte {b}"))),
        }
    }

    /// Reads a collection length, bounded by the remaining stream so a
    /// corrupt length cannot trigger a huge allocation.
    pub fn take_len(&mut self) -> Result<usize, StoreError> {
        let n = self.take_u64()?;
        if n > self.remaining() as u64 * 8 + 64 {
            return Err(StoreError::Invalid(format!("implausible length {n}")));
        }
        Ok(n as usize)
    }

    /// Reads a length-prefixed byte string.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], StoreError> {
        let n = self.take_u64()?;
        if n > self.remaining() as u64 {
            return Err(StoreError::Truncated);
        }
        self.take(n as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String, StoreError> {
        let b = self.take_bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| StoreError::Invalid("non-UTF-8 string".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut e = Encoder::new();
        e.put_u8(7);
        e.put_u16(0xBEEF);
        e.put_u32(0xDEAD_BEEF);
        e.put_u64(u64::MAX - 3);
        e.put_f64(-0.0);
        e.put_f64(f64::NAN);
        e.put_bool(true);
        e.put_str("wmed");
        e.put_bytes(&[1, 2, 3]);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.take_u8().unwrap(), 7);
        assert_eq!(d.take_u16().unwrap(), 0xBEEF);
        assert_eq!(d.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.take_u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(d.take_f64().unwrap().is_nan());
        assert!(d.take_bool().unwrap());
        assert_eq!(d.take_str().unwrap(), "wmed");
        assert_eq!(d.take_bytes().unwrap(), &[1, 2, 3]);
        d.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut e = Encoder::new();
        e.put_u64(42);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes[..5]);
        assert!(matches!(d.take_u64(), Err(StoreError::Truncated)));
    }

    #[test]
    fn oversized_string_length_is_truncated_error() {
        let mut e = Encoder::new();
        e.put_u64(1 << 40); // a length far beyond the stream
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert!(d.take_bytes().is_err());
    }

    #[test]
    fn trailing_bytes_fail_finish() {
        let mut e = Encoder::new();
        e.put_u8(1);
        e.put_u8(2);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let _ = d.take_u8().unwrap();
        assert!(d.finish().is_err());
    }

    #[test]
    fn bad_bool_is_invalid() {
        let bytes = [9u8];
        let mut d = Decoder::new(&bytes);
        assert!(matches!(d.take_bool(), Err(StoreError::Invalid(_))));
    }
}
