//! The sealed blob container: every artifact on disk is wrapped in a
//! fixed header plus a trailing checksum.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"AXST"
//! 4       4     format version (u32)
//! 8       4     type tag (4 ASCII bytes, e.g. b"ALIB")
//! 12      8     payload length (u64)
//! 20      n     payload
//! 20+n    8     FNV-1a 64 checksum over bytes [0, 20+n)
//! ```
//!
//! The checksum covers the header too, so a version or tag edit is caught
//! even before the version comparison runs; [`unseal`] still reports the
//! most specific error it can (magic → checksum → version → tag → length)
//! so callers can distinguish "stale format" from "bit rot".

use crate::StoreError;

/// Magic prefix of every store blob.
pub const MAGIC: [u8; 4] = *b"AXST";

/// Current store format version. Bump on any codec layout change: the
/// version participates both in the header comparison and in the
/// content-address key salt, so old files are ignored rather than
/// misparsed.
pub const FORMAT_VERSION: u32 = 1;

const HEADER_LEN: usize = 20;

/// FNV-1a 64-bit hash — the same construction the characterization
/// fingerprints use, good enough for corruption *detection* (not tamper
/// resistance, which an on-disk cache does not need).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn seal_with_version(tag: [u8; 4], payload: Vec<u8>, version: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&tag);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Wraps a payload in the sealed container format.
pub fn seal(tag: [u8; 4], payload: Vec<u8>) -> Vec<u8> {
    seal_with_version(tag, payload, FORMAT_VERSION)
}

/// Validates a sealed blob and returns a view of its payload.
///
/// # Errors
/// [`StoreError::BadMagic`], [`StoreError::Truncated`],
/// [`StoreError::Checksum`], [`StoreError::Version`] or
/// [`StoreError::Tag`] — in that order of precedence.
pub fn unseal(bytes: &[u8], expected_tag: [u8; 4]) -> Result<&[u8], StoreError> {
    if bytes.len() < HEADER_LEN + 8 {
        return Err(StoreError::Truncated);
    }
    if bytes[0..4] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let body = &bytes[..bytes.len() - 8];
    let stored_sum = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    if fnv1a64(body) != stored_sum {
        return Err(StoreError::Checksum);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(StoreError::Version {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let tag: [u8; 4] = bytes[8..12].try_into().unwrap();
    if tag != expected_tag {
        return Err(StoreError::Tag {
            found: tag,
            expected: expected_tag,
        });
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
    if HEADER_LEN + len + 8 != bytes.len() {
        return Err(StoreError::Invalid(format!(
            "payload length {len} disagrees with blob size {}",
            bytes.len()
        )));
    }
    Ok(&bytes[HEADER_LEN..HEADER_LEN + len])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_unseal_round_trip() {
        let blob = seal(*b"TEST", vec![1, 2, 3, 4, 5]);
        assert_eq!(unseal(&blob, *b"TEST").unwrap(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_payload_round_trips() {
        let blob = seal(*b"NULL", Vec::new());
        assert_eq!(unseal(&blob, *b"NULL").unwrap(), &[] as &[u8]);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        // Corruption of any bit — header, payload or checksum — must be
        // reported as an error of some kind, never silently accepted.
        let blob = seal(*b"PROP", vec![0xAB; 17]);
        for byte in 0..blob.len() {
            for bit in 0..8 {
                let mut c = blob.clone();
                c[byte] ^= 1 << bit;
                assert!(
                    unseal(&c, *b"PROP").is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn version_mismatch_is_reported_as_version() {
        let blob = seal_with_version(*b"VERS", vec![9, 9], FORMAT_VERSION + 1);
        match unseal(&blob, *b"VERS") {
            Err(StoreError::Version { found, expected }) => {
                assert_eq!(found, FORMAT_VERSION + 1);
                assert_eq!(expected, FORMAT_VERSION);
            }
            other => panic!("expected Version error, got {other:?}"),
        }
    }

    #[test]
    fn tag_mismatch_is_reported_as_tag() {
        let blob = seal(*b"AAAA", vec![1]);
        assert!(matches!(
            unseal(&blob, *b"BBBB"),
            Err(StoreError::Tag { .. })
        ));
    }

    #[test]
    fn wrong_magic_is_bad_magic() {
        let mut blob = seal(*b"TEST", vec![1]);
        blob[0] = b'Z';
        // magic is checked before the checksum
        assert!(matches!(unseal(&blob, *b"TEST"), Err(StoreError::BadMagic)));
    }

    #[test]
    fn truncated_blob_is_truncated() {
        let blob = seal(*b"TEST", vec![1, 2, 3]);
        assert!(matches!(
            unseal(&blob[..10], *b"TEST"),
            Err(StoreError::Truncated)
        ));
    }

    #[test]
    fn fnv_reference_vector() {
        // Classic FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
    }
}
