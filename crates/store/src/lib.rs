//! # autoax-store
//!
//! Persistence layer of the autoAx reproduction: a hand-rolled, versioned,
//! checksummed binary codec (no external serialization dependency — the
//! build environment is offline) plus a content-addressed on-disk cache.
//!
//! The paper's Steps 1–2 — component characterization and QoR/hardware
//! model construction — dominate wall-clock yet are fully deterministic
//! functions of the library configuration, the benchmark images and the
//! pipeline options. autoAx itself argues the characterized library and
//! the fitted models are reusable artifacts (across applications, and in
//! the follow-up DNN-accelerator work across many accelerator
//! instantiations). This crate makes that reuse concrete:
//!
//! * [`codec`] — little-endian primitive encoder/decoder;
//! * [`container`] — the sealed blob format: magic, format version, type
//!   tag, payload length and an FNV-1a 64 checksum. Corrupt or
//!   version-mismatched blobs are *detected*, never trusted;
//! * [`circuit_codec`] — round-trip for a characterized
//!   [`autoax_circuit::charlib::ComponentLibrary`] (behaviours, netlists,
//!   error/hardware characterization tables);
//! * [`ml_codec`] — round-trip for fitted
//!   [`autoax_ml::engine::Regressor`] models (random forest, decision
//!   tree and the linear family);
//! * [`cache`] — [`cache::CacheMode`], 128-bit content-address keys, the
//!   atomic-write file store and the [`cache::BlobStore`] seam the
//!   pipeline loads/saves through;
//! * [`library`] — [`library::load_or_build_library`], the warm-start
//!   entry point for the characterized component library;
//! * [`lru`] / [`sharded`] — the service tier: a byte-budgeted in-memory
//!   LRU and the key-prefix-sharded, per-shard-locked
//!   [`sharded::ShardedStore`] that lets N concurrent tenants share one
//!   warm store.
//!
//! # Example
//!
//! Round-trip a sealed blob and observe that corruption is detected:
//!
//! ```
//! use autoax_store::codec::Encoder;
//! use autoax_store::container::{seal, unseal};
//! use autoax_store::StoreError;
//!
//! let mut enc = Encoder::new();
//! enc.put_str("hello");
//! enc.put_f64(0.25);
//! let mut blob = seal(*b"DEMO", enc.into_bytes());
//!
//! let payload = unseal(&blob, *b"DEMO").unwrap();
//! assert!(!payload.is_empty());
//!
//! let last = blob.len() - 1;
//! blob[last] ^= 0xFF; // flip a checksum bit
//! assert!(matches!(unseal(&blob, *b"DEMO"), Err(StoreError::Checksum)));
//! ```

pub mod cache;
pub mod circuit_codec;
pub mod codec;
pub mod container;
pub mod library;
pub mod lru;
pub mod ml_codec;
pub mod sharded;

pub use cache::{parse_cache_flags, BlobStore, CacheKey, CacheMode, KeyHasher, Loaded, Store};
pub use library::load_or_build_library;
pub use lru::LruCache;
pub use sharded::{ShardedStore, StoreStats};

/// Errors of the persistence layer.
///
/// Every decode path is total: malformed bytes produce an error, never a
/// panic, so a corrupt cache file degrades to a recompute.
#[derive(Debug)]
pub enum StoreError {
    /// The byte stream ended before the expected data.
    Truncated,
    /// The blob does not start with the store magic.
    BadMagic,
    /// The blob was written by an incompatible format version.
    Version {
        /// Version found in the blob.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The blob carries a different type tag than requested.
    Tag {
        /// Tag found in the blob.
        found: [u8; 4],
        /// Tag the caller expected.
        expected: [u8; 4],
    },
    /// The checksum does not match the content.
    Checksum,
    /// The value cannot be represented in this format (e.g. an unfitted or
    /// unsupported model type).
    Unsupported(String),
    /// Structurally invalid data (valid checksum but inconsistent
    /// contents — only reachable with hand-crafted blobs).
    Invalid(String),
    /// An underlying filesystem error.
    Io(std::io::Error),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Truncated => write!(f, "byte stream truncated"),
            StoreError::BadMagic => write!(f, "not an autoax store blob (bad magic)"),
            StoreError::Version { found, expected } => {
                write!(
                    f,
                    "format version mismatch: found {found}, expected {expected}"
                )
            }
            StoreError::Tag { found, expected } => write!(
                f,
                "blob tag mismatch: found {:?}, expected {:?}",
                String::from_utf8_lossy(found),
                String::from_utf8_lossy(expected)
            ),
            StoreError::Checksum => write!(f, "checksum mismatch (corrupt blob)"),
            StoreError::Unsupported(what) => write!(f, "unsupported for serialization: {what}"),
            StoreError::Invalid(what) => write!(f, "invalid stored data: {what}"),
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}
