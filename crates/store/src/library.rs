//! Warm-start for the characterized component library.
//!
//! [`build_library`] is the single most expensive deterministic step of
//! the whole flow at paper scale (tens of thousands of circuits, each
//! characterized over up to 2^20 operand assignments), yet its output is a
//! pure function of [`LibraryConfig`]. [`load_or_build_library`] gives it
//! a content-addressed disk cache: the key hashes every config field plus
//! the store format version, the value is the sealed, checksummed library
//! blob.

use crate::cache::{CacheKey, CacheMode, KeyHasher, Loaded, Store};
use crate::circuit_codec::{put_library, take_library};
use crate::codec::{Decoder, Encoder};
use crate::StoreError;
use autoax_circuit::charlib::{build_library, ComponentLibrary, LibraryConfig};
use std::path::Path;
use std::time::{Duration, Instant};

/// Container tag of library blobs.
pub const LIBRARY_TAG: [u8; 4] = *b"ALIB";

/// The content-address of a library configuration.
pub fn library_key(cfg: &LibraryConfig) -> CacheKey {
    let mut h = KeyHasher::new("component-library");
    for n in [
        cfg.counts.add8,
        cfg.counts.add9,
        cfg.counts.add16,
        cfg.counts.sub10,
        cfg.counts.sub16,
        cfg.counts.mul8,
    ] {
        h.write_u64(n as u64);
    }
    h.write_u64(cfg.seed);
    h.write_u64(cfg.char_samples as u64);
    h.write_u64(cfg.max_exhaustive_bits as u64);
    h.write_f64(cfg.max_wce_frac);
    h.write_f64(cfg.mutant_frac);
    h.finish()
}

/// Encodes a library into a standalone payload (unsealed).
pub fn encode_library(lib: &ComponentLibrary) -> Vec<u8> {
    let mut e = Encoder::new();
    put_library(&mut e, lib);
    e.into_bytes()
}

/// Decodes a library payload written by [`encode_library`].
pub fn decode_library(payload: &[u8]) -> Result<ComponentLibrary, StoreError> {
    let mut d = Decoder::new(payload);
    let lib = take_library(&mut d)?;
    d.finish()?;
    Ok(lib)
}

/// What [`load_or_build_library`] did, with timings for reporting.
#[derive(Debug)]
pub struct LibraryOutcome {
    /// The characterized library (loaded or freshly built).
    pub lib: ComponentLibrary,
    /// True when the library came from the cache.
    pub cache_hit: bool,
    /// Time spent loading + decoding (zero on a miss).
    pub load_time: Duration,
    /// Time spent building + characterizing (zero on a hit).
    pub build_time: Duration,
}

/// Loads the characterized library for `cfg` from `dir`, or builds and
/// (in read-write mode) persists it.
///
/// Corrupt or version-mismatched cache files are silently treated as
/// misses — the library is rebuilt and, in read-write mode, the bad entry
/// is replaced. With `dir = None` or [`CacheMode::Off`] this is exactly
/// [`build_library`].
pub fn load_or_build_library(
    cfg: &LibraryConfig,
    dir: Option<&Path>,
    mode: CacheMode,
) -> LibraryOutcome {
    let store = dir
        .filter(|_| mode.reads() || mode.writes())
        .map(|d| (Store::new(d), library_key(cfg)));
    if let Some((store, key)) = &store {
        if mode.reads() {
            let t = Instant::now();
            if let Loaded::Hit(payload) = store.load("library", *key, LIBRARY_TAG) {
                if let Ok(lib) = decode_library(&payload) {
                    return LibraryOutcome {
                        lib,
                        cache_hit: true,
                        load_time: t.elapsed(),
                        build_time: Duration::ZERO,
                    };
                }
            }
        }
    }
    let t = Instant::now();
    let lib = build_library(cfg);
    let build_time = t.elapsed();
    if let Some((store, key)) = &store {
        if mode.writes() {
            // best-effort: a failed write must not fail the run
            let _ = store.save("library", *key, LIBRARY_TAG, encode_library(&lib));
        }
    }
    LibraryOutcome {
        lib,
        cache_hit: false,
        load_time: Duration::ZERO,
        build_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "autoax-libcache-test-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn cold_then_warm_yields_identical_library() {
        let dir = temp_dir("warm");
        let cfg = LibraryConfig::tiny();
        let cold = load_or_build_library(&cfg, Some(&dir), CacheMode::ReadWrite);
        assert!(!cold.cache_hit);
        let warm = load_or_build_library(&cfg, Some(&dir), CacheMode::ReadWrite);
        assert!(warm.cache_hit, "second run must hit the cache");
        assert_eq!(cold.lib.total_size(), warm.lib.total_size());
        for sig in cold.lib.signatures() {
            for (a, b) in cold.lib.class(sig).iter().zip(warm.lib.class(sig)) {
                assert_eq!(a.behavior, b.behavior);
                assert_eq!(a.label, b.label);
                assert_eq!(a.hw.area.to_bits(), b.hw.area.to_bits());
                assert_eq!(a.err.mae.to_bits(), b.err.mae.to_bits());
            }
        }
    }

    #[test]
    fn different_configs_get_different_keys() {
        let a = library_key(&LibraryConfig::tiny());
        let b = library_key(&LibraryConfig {
            seed: 43,
            ..LibraryConfig::tiny()
        });
        assert_ne!(a, b);
        let c = library_key(&LibraryConfig {
            char_samples: 4096,
            ..LibraryConfig::tiny()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn corrupt_library_blob_falls_back_to_rebuild() {
        let dir = temp_dir("corrupt");
        let cfg = LibraryConfig::tiny();
        let cold = load_or_build_library(&cfg, Some(&dir), CacheMode::ReadWrite);
        let store = Store::new(&dir);
        let path = store.entry_path("library", library_key(&cfg));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 3;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, bytes).unwrap();
        let recovered = load_or_build_library(&cfg, Some(&dir), CacheMode::ReadWrite);
        assert!(!recovered.cache_hit, "corrupt entry must not hit");
        assert_eq!(cold.lib.total_size(), recovered.lib.total_size());
        // read-write mode replaced the corrupt entry
        let warm = load_or_build_library(&cfg, Some(&dir), CacheMode::Read);
        assert!(warm.cache_hit);
    }

    #[test]
    fn off_mode_never_touches_disk() {
        let dir = temp_dir("off");
        let cfg = LibraryConfig::tiny();
        let out = load_or_build_library(&cfg, Some(&dir), CacheMode::Off);
        assert!(!out.cache_hit);
        assert!(!dir.exists(), "off mode must not create the cache dir");
    }
}
