//! A byte-budgeted least-recently-used cache for sealed-blob payloads.
//!
//! This is the in-memory tier the service layer puts in front of the
//! on-disk [`crate::cache::Store`]: repeat lookups of a hot artifact
//! (a characterized library, a Step-1/2 bundle, a finished job result)
//! skip the filesystem entirely. The cache is a plain data structure —
//! callers provide their own locking (the sharded store wraps one
//! `LruCache` per shard inside the shard mutex).
//!
//! Recency is tracked with a monotonically increasing stamp per access
//! and a `BTreeMap<stamp, key>` order index, so eviction pops the
//! smallest stamp in `O(log n)` without a hand-rolled linked list.
//! Overwrites replace the stored bytes *before* any future `get` can run
//! (the caller holds the lock), so a stale value is never served after an
//! update — property-tested in `sharded`.

use std::collections::{BTreeMap, HashMap};

/// A byte-budgeted LRU map from string keys to payload bytes.
#[derive(Debug, Default)]
pub struct LruCache {
    /// Key → (recency stamp, payload).
    map: HashMap<String, (u64, Vec<u8>)>,
    /// Recency stamp → key (the eviction order index).
    order: BTreeMap<u64, String>,
    /// Next stamp to hand out (strictly increasing).
    clock: u64,
    /// Maximum total payload bytes held; `0` disables the cache.
    max_bytes: usize,
    /// Current total payload bytes held.
    cur_bytes: usize,
    /// Entries evicted to stay under budget (monotonic counter).
    evictions: u64,
}

impl LruCache {
    /// A cache holding at most `max_bytes` of payload (`0` = disabled:
    /// every insert is dropped, every get misses).
    pub fn new(max_bytes: usize) -> Self {
        LruCache {
            max_bytes,
            ..Self::default()
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total payload bytes currently held.
    pub fn bytes(&self) -> usize {
        self.cur_bytes
    }

    /// Entries evicted so far to stay under budget.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn touch(&mut self, key: &str) {
        if let Some((stamp, _)) = self.map.get(key) {
            let old = *stamp;
            self.order.remove(&old);
            let stamp = self.clock;
            self.clock += 1;
            self.order.insert(stamp, key.to_string());
            self.map.get_mut(key).expect("touched key present").0 = stamp;
        }
    }

    /// Looks a payload up, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: &str) -> Option<&[u8]> {
        if !self.map.contains_key(key) {
            return None;
        }
        self.touch(key);
        self.map.get(key).map(|(_, v)| v.as_slice())
    }

    /// Inserts or overwrites a payload, evicting least-recently-used
    /// entries until the budget holds. A payload larger than the whole
    /// budget is not cached at all (the disk tier still has it).
    pub fn insert(&mut self, key: &str, payload: Vec<u8>) {
        if payload.len() > self.max_bytes {
            // Too big to ever fit; also drop any stale resident version
            // so a later get cannot observe pre-overwrite bytes.
            self.remove(key);
            return;
        }
        self.remove(key);
        let stamp = self.clock;
        self.clock += 1;
        self.cur_bytes += payload.len();
        self.order.insert(stamp, key.to_string());
        self.map.insert(key.to_string(), (stamp, payload));
        while self.cur_bytes > self.max_bytes {
            let Some((&oldest, _)) = self.order.iter().next() else {
                break;
            };
            let victim = self.order.remove(&oldest).expect("order entry");
            if let Some((_, v)) = self.map.remove(&victim) {
                self.cur_bytes -= v.len();
                self.evictions += 1;
            }
        }
    }

    /// Removes an entry if resident.
    pub fn remove(&mut self, key: &str) {
        if let Some((stamp, v)) = self.map.remove(key) {
            self.order.remove(&stamp);
            self.cur_bytes -= v.len();
        }
    }

    /// Drops every resident entry (budget and counters keep their values).
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
        self.cur_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_after_insert_returns_the_bytes() {
        let mut c = LruCache::new(1024);
        c.insert("a", vec![1, 2, 3]);
        assert_eq!(c.get("a"), Some(&[1u8, 2, 3][..]));
        assert_eq!(c.get("b"), None);
        assert_eq!(c.bytes(), 3);
    }

    #[test]
    fn overwrite_replaces_bytes_and_budget() {
        let mut c = LruCache::new(1024);
        c.insert("a", vec![1; 100]);
        c.insert("a", vec![2; 10]);
        assert_eq!(c.get("a"), Some(&[2u8; 10][..]));
        assert_eq!(c.bytes(), 10);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let mut c = LruCache::new(30);
        c.insert("a", vec![0; 10]);
        c.insert("b", vec![0; 10]);
        c.insert("c", vec![0; 10]);
        // touch `a` so `b` is now the LRU entry
        assert!(c.get("a").is_some());
        c.insert("d", vec![0; 10]);
        assert!(c.get("b").is_none(), "LRU entry must be evicted");
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
        assert!(c.get("d").is_some());
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn oversized_payload_is_not_cached_and_drops_stale_bytes() {
        let mut c = LruCache::new(8);
        c.insert("a", vec![1; 4]);
        c.insert("a", vec![2; 100]); // over budget: must not serve [1; 4]
        assert_eq!(c.get("a"), None);
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn zero_budget_disables_the_cache() {
        let mut c = LruCache::new(0);
        c.insert("a", vec![]);
        // even an empty payload is refused: len() > 0 is false here, so
        // allow it or not — what matters is that nothing non-empty lands
        c.insert("b", vec![1]);
        assert_eq!(c.get("b"), None);
    }

    #[test]
    fn clear_empties_everything() {
        let mut c = LruCache::new(100);
        c.insert("a", vec![1; 10]);
        c.insert("b", vec![1; 10]);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
        assert_eq!(c.get("a"), None);
    }
}
