//! Codec for fitted regression models.
//!
//! Models are stored as a tagged union over the concrete engine types the
//! store understands: the random forest (the paper's winning engine), the
//! single CART tree, and the linear family (fixed-weight naïve models,
//! SGD, ridge and Bayesian ridge). Downcasting happens through
//! [`Regressor::as_any`]; engines without that hook (kNN, MLP, GP, …)
//! yield [`StoreError::Unsupported`] and the caller falls back to
//! refitting — a cache miss, never an incorrect result.
//!
//! Restored models predict **bitwise identically** to the originals:
//! only prediction-relevant state is consulted at predict time, and every
//! float is stored as its exact bit pattern.

use crate::codec::{Decoder, Encoder};
use crate::StoreError;
use autoax_ml::dataset::{Standardizer, TargetScaler};
use autoax_ml::engine::Regressor;
use autoax_ml::forest::RandomForest;
use autoax_ml::linear::{BayesianRidge, LinearFixed, Ridge, SgdLinear};
use autoax_ml::tree::{DecisionTree, NodeRepr, TreeConfig};

const TAG_FOREST: u8 = 1;
const TAG_TREE: u8 = 2;
const TAG_LINEAR_FIXED: u8 = 3;
const TAG_SGD: u8 = 4;
const TAG_RIDGE: u8 = 5;
const TAG_BAYESIAN_RIDGE: u8 = 6;

fn put_f64_slice(e: &mut Encoder, v: &[f64]) {
    e.put_len(v.len());
    for &x in v {
        e.put_f64(x);
    }
}

fn take_f64_vec(d: &mut Decoder<'_>) -> Result<Vec<f64>, StoreError> {
    let n = d.take_len()?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(d.take_f64()?);
    }
    Ok(v)
}

fn put_tree_config(e: &mut Encoder, c: &TreeConfig) {
    e.put_u64(c.max_depth as u64);
    e.put_u64(c.min_samples_split as u64);
    e.put_u64(c.min_samples_leaf as u64);
    match c.max_features {
        Some(m) => {
            e.put_bool(true);
            e.put_u64(m as u64);
        }
        None => e.put_bool(false),
    }
    e.put_u64(c.seed);
}

fn take_tree_config(d: &mut Decoder<'_>) -> Result<TreeConfig, StoreError> {
    let max_depth = d.take_u64()? as usize;
    let min_samples_split = d.take_u64()? as usize;
    let min_samples_leaf = d.take_u64()? as usize;
    let max_features = if d.take_bool()? {
        Some(d.take_u64()? as usize)
    } else {
        None
    };
    let seed = d.take_u64()?;
    Ok(TreeConfig {
        max_depth,
        min_samples_split,
        min_samples_leaf,
        max_features,
        seed,
    })
}

fn put_tree(e: &mut Encoder, t: &DecisionTree) {
    put_tree_config(e, &t.config());
    let nodes = t.export_nodes();
    e.put_len(nodes.len());
    for n in nodes {
        match n {
            NodeRepr::Leaf { value } => {
                e.put_u8(0);
                e.put_f64(value);
            }
            NodeRepr::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                e.put_u8(1);
                e.put_u32(feature);
                e.put_f64(threshold);
                e.put_u32(left);
                e.put_u32(right);
            }
        }
    }
}

fn take_tree(d: &mut Decoder<'_>) -> Result<DecisionTree, StoreError> {
    let config = take_tree_config(d)?;
    let n = d.take_len()?;
    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        nodes.push(match d.take_u8()? {
            0 => NodeRepr::Leaf {
                value: d.take_f64()?,
            },
            1 => NodeRepr::Split {
                feature: d.take_u32()?,
                threshold: d.take_f64()?,
                left: d.take_u32()?,
                right: d.take_u32()?,
            },
            t => return Err(StoreError::Invalid(format!("bad tree node tag {t}"))),
        });
    }
    DecisionTree::from_nodes(config, &nodes)
        .map_err(|e| StoreError::Invalid(format!("tree rebuild: {e}")))
}

fn put_standardizer(e: &mut Encoder, s: &Standardizer) {
    put_f64_slice(e, s.means());
    put_f64_slice(e, s.stds());
}

fn take_standardizer(d: &mut Decoder<'_>) -> Result<Standardizer, StoreError> {
    let means = take_f64_vec(d)?;
    let stds = take_f64_vec(d)?;
    if means.len() != stds.len() {
        return Err(StoreError::Invalid(
            "scaler mean/std length mismatch".into(),
        ));
    }
    Ok(Standardizer::from_parts(means, stds))
}

/// Encodes a fitted regressor as a tagged payload.
///
/// # Errors
/// [`StoreError::Unsupported`] when the concrete engine type has no
/// serialization support (callers treat this as "do not cache").
pub fn put_regressor(e: &mut Encoder, r: &dyn Regressor) -> Result<(), StoreError> {
    let Some(any) = r.as_any() else {
        return Err(StoreError::Unsupported(
            "engine without serialization hook".into(),
        ));
    };
    if let Some(f) = any.downcast_ref::<RandomForest>() {
        e.put_u8(TAG_FOREST);
        e.put_u64(f.seed);
        put_tree_config(e, &f.tree_config);
        e.put_len(f.fitted_trees().len());
        for t in f.fitted_trees() {
            put_tree(e, t);
        }
        Ok(())
    } else if let Some(t) = any.downcast_ref::<DecisionTree>() {
        e.put_u8(TAG_TREE);
        put_tree(e, t);
        Ok(())
    } else if let Some(l) = any.downcast_ref::<LinearFixed>() {
        e.put_u8(TAG_LINEAR_FIXED);
        put_f64_slice(e, l.weights());
        Ok(())
    } else if let Some(s) = any.downcast_ref::<SgdLinear>() {
        e.put_u8(TAG_SGD);
        e.put_u64(s.seed);
        let (w, b) = s.fitted_parts();
        put_f64_slice(e, w);
        e.put_f64(b);
        Ok(())
    } else if let Some(r) = any.downcast_ref::<Ridge>() {
        let (s, y, w) = r
            .fitted_parts()
            .ok_or_else(|| StoreError::Unsupported("unfitted ridge model".into()))?;
        e.put_u8(TAG_RIDGE);
        e.put_f64(r.alpha);
        put_standardizer(e, s);
        let (ym, ys) = y.parts();
        e.put_f64(ym);
        e.put_f64(ys);
        put_f64_slice(e, w);
        Ok(())
    } else if let Some(br) = any.downcast_ref::<BayesianRidge>() {
        let (s, y, w) = br
            .fitted_parts()
            .ok_or_else(|| StoreError::Unsupported("unfitted bayesian ridge model".into()))?;
        e.put_u8(TAG_BAYESIAN_RIDGE);
        e.put_u64(br.max_iter as u64);
        put_standardizer(e, s);
        let (ym, ys) = y.parts();
        e.put_f64(ym);
        e.put_f64(ys);
        put_f64_slice(e, w);
        Ok(())
    } else {
        Err(StoreError::Unsupported(
            "engine type not covered by the model codec".into(),
        ))
    }
}

/// Decodes a regressor written by [`put_regressor`].
pub fn take_regressor(d: &mut Decoder<'_>) -> Result<Box<dyn Regressor>, StoreError> {
    Ok(match d.take_u8()? {
        TAG_FOREST => {
            let seed = d.take_u64()?;
            let tree_config = take_tree_config(d)?;
            let n = d.take_len()?;
            let mut trees = Vec::with_capacity(n);
            for _ in 0..n {
                trees.push(take_tree(d)?);
            }
            Box::new(RandomForest::from_fitted_parts(seed, tree_config, trees))
        }
        TAG_TREE => Box::new(take_tree(d)?),
        TAG_LINEAR_FIXED => Box::new(LinearFixed::new(take_f64_vec(d)?)),
        TAG_SGD => {
            let seed = d.take_u64()?;
            let w = take_f64_vec(d)?;
            let b = d.take_f64()?;
            Box::new(SgdLinear::from_fitted_parts(seed, w, b))
        }
        TAG_RIDGE => {
            let alpha = d.take_f64()?;
            let s = take_standardizer(d)?;
            let y = TargetScaler::from_parts(d.take_f64()?, d.take_f64()?);
            let w = take_f64_vec(d)?;
            Box::new(Ridge::from_fitted_parts(alpha, s, y, w))
        }
        TAG_BAYESIAN_RIDGE => {
            let max_iter = d.take_u64()? as usize;
            let s = take_standardizer(d)?;
            let y = TargetScaler::from_parts(d.take_f64()?, d.take_f64()?);
            let w = take_f64_vec(d)?;
            Box::new(BayesianRidge::from_fitted_parts(max_iter, s, y, w))
        }
        t => return Err(StoreError::Invalid(format!("bad regressor tag {t}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoax_ml::engine::EngineKind;
    use autoax_ml::linalg::Matrix;

    fn training_data() -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..120)
            .map(|i| {
                vec![
                    ((i * 7) % 23) as f64 / 22.0,
                    ((i * 13) % 17) as f64 / 16.0,
                    ((i * 3) % 11) as f64 / 10.0,
                ]
            })
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| 2.0 * r[0] + 3.0 * r[1] * r[1] - r[2])
            .collect();
        (Matrix::from_rows(&rows), y)
    }

    fn round_trip(r: &dyn Regressor) -> Box<dyn Regressor> {
        let mut e = Encoder::new();
        put_regressor(&mut e, r).unwrap();
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let out = take_regressor(&mut d).unwrap();
        d.finish().unwrap();
        out
    }

    fn assert_bitwise_equal_predictions(a: &dyn Regressor, b: &dyn Regressor) {
        let (x, _) = training_data();
        for row in x.rows_iter() {
            assert_eq!(
                a.predict_row(row).to_bits(),
                b.predict_row(row).to_bits(),
                "prediction diverged on {row:?}"
            );
        }
    }

    #[test]
    fn random_forest_round_trips_bitwise() {
        let (x, y) = training_data();
        let mut f = RandomForest::new(7).with_trees(15);
        f.fit(&x, &y).unwrap();
        let rt = round_trip(&f);
        assert_bitwise_equal_predictions(&f, rt.as_ref());
    }

    #[test]
    fn every_supported_engine_round_trips_bitwise() {
        let (x, y) = training_data();
        for kind in [
            EngineKind::RandomForest,
            EngineKind::DecisionTree,
            EngineKind::BayesianRidge,
            EngineKind::StochasticGradientDescent,
        ] {
            let mut m = kind.make(3);
            m.fit(&x, &y).unwrap();
            let rt = round_trip(m.as_ref());
            assert_bitwise_equal_predictions(m.as_ref(), rt.as_ref());
        }
    }

    #[test]
    fn linear_fixed_and_ridge_round_trip() {
        let lf = LinearFixed::new(vec![1.0, -2.5, 0.0]);
        assert_bitwise_equal_predictions(&lf, round_trip(&lf).as_ref());
        let (x, y) = training_data();
        let mut r = Ridge::new(1e-4);
        r.fit(&x, &y).unwrap();
        assert_bitwise_equal_predictions(&r, round_trip(&r).as_ref());
    }

    #[test]
    fn unsupported_engine_is_reported_not_panicked() {
        let (x, y) = training_data();
        let mut m = EngineKind::KNeighbors.make(0);
        m.fit(&x, &y).unwrap();
        let mut e = Encoder::new();
        assert!(matches!(
            put_regressor(&mut e, m.as_ref()),
            Err(StoreError::Unsupported(_))
        ));
    }

    #[test]
    fn unfitted_ridge_is_unsupported() {
        let r = Ridge::new(1.0);
        let mut e = Encoder::new();
        assert!(matches!(
            put_regressor(&mut e, &r),
            Err(StoreError::Unsupported(_))
        ));
    }
}
