//! The service tier's shared store: key-prefix shards with per-shard
//! locks and an in-memory LRU over the on-disk cache.
//!
//! One process serving many concurrent tenants funnels every artifact —
//! characterized libraries, Step-1/2 warm-start bundles, finished job
//! results — through a single store. A single `Mutex<Store>` would
//! serialize all of it; [`ShardedStore`] instead routes each
//! [`CacheKey`] to one of `2^bits` shards by the *top bits of the key's
//! high lane* (the key prefix), each shard owning its own subdirectory,
//! its own lock and its own [`LruCache`] segment. Two jobs touching
//! different keys contend only when their prefixes collide.
//!
//! Semantics are exactly those of the unsharded [`Store`] (property-
//! tested in `tests/serve_concurrency.rs`): a payload saved under a key
//! is returned bit-for-bit by the next load, an overwrite is visible to
//! every later load (the LRU is updated under the same shard lock that
//! wrote the disk file, so stale bytes are never served), and corrupt
//! disk entries are rejected, never trusted — an LRU hit never re-reads
//! disk, which is safe because the LRU only holds payloads that already
//! passed container validation or were just written by us.

use crate::cache::{BlobStore, CacheKey, Loaded, Store};
use crate::lru::LruCache;
use crate::StoreError;
use autoax_telemetry as telemetry;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Snapshot of a store's hit/miss counters (monotonic since creation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Loads answered from the in-memory LRU tier.
    pub lru_hits: u64,
    /// Loads answered from disk (and promoted into the LRU).
    pub disk_hits: u64,
    /// Loads that found nothing (or a corrupt entry) anywhere.
    pub misses: u64,
    /// Saves written through to disk.
    pub saves: u64,
}

/// One shard: a directory-backed [`Store`] plus its LRU segment, both
/// behind the shard lock.
#[derive(Debug)]
struct Shard {
    store: Store,
    lru: LruCache,
}

/// A sharded, LRU-fronted implementation of [`BlobStore`].
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<Mutex<Shard>>,
    /// log2 of the shard count, used to slice the key prefix.
    bits: u32,
    lru_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    saves: AtomicU64,
}

/// Default shard count (16 — comfortably more than the worker count of a
/// single-box deployment).
pub const DEFAULT_SHARD_BITS: u32 = 4;

/// Default in-memory budget per shard (4 MiB; a Step-1/2 bundle at quick
/// scale is tens of kilobytes).
pub const DEFAULT_SHARD_LRU_BYTES: usize = 4 << 20;

impl ShardedStore {
    /// A store rooted at `dir` with `2^bits` shards (clamped to `0..=8`)
    /// and `lru_bytes` of in-memory budget **per shard**. Shard
    /// subdirectories (`shard-00`, `shard-01`, …) are created lazily on
    /// first write.
    pub fn new(dir: impl Into<PathBuf>, bits: u32, lru_bytes: usize) -> Self {
        let dir = dir.into();
        let bits = bits.min(8);
        let shards = (0..1usize << bits)
            .map(|i| {
                Mutex::new(Shard {
                    store: Store::new(dir.join(format!("shard-{i:02x}"))),
                    lru: LruCache::new(lru_bytes),
                })
            })
            .collect();
        ShardedStore {
            shards,
            bits,
            lru_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            saves: AtomicU64::new(0),
        }
    }

    /// A store with the default shard count and per-shard LRU budget.
    pub fn with_defaults(dir: impl Into<PathBuf>) -> Self {
        Self::new(dir, DEFAULT_SHARD_BITS, DEFAULT_SHARD_LRU_BYTES)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a key routes to: the top `bits` of the key's high lane.
    pub fn shard_index(&self, key: CacheKey) -> usize {
        if self.bits == 0 {
            0
        } else {
            (key.hi >> (64 - self.bits)) as usize
        }
    }

    /// On-disk path an entry would occupy (for tests and diagnostics).
    pub fn entry_path(&self, kind: &str, key: CacheKey) -> PathBuf {
        let shard = self.shards[self.shard_index(key)]
            .lock()
            .expect("shard lock poisoned");
        shard.store.entry_path(kind, key)
    }

    /// Drops every in-memory LRU entry; disk contents are untouched.
    /// Lets tests distinguish LRU hits from disk hits.
    pub fn flush_memory(&self) {
        for s in &self.shards {
            s.lock().expect("shard lock poisoned").lru.clear();
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            lru_hits: self.lru_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            saves: self.saves.load(Ordering::Relaxed),
        }
    }

    fn lru_key(kind: &str, key: CacheKey, tag: [u8; 4]) -> String {
        format!("{kind}:{}:{}", key.hex(), u32::from_le_bytes(tag))
    }
}

impl BlobStore for ShardedStore {
    fn load_blob(&self, kind: &str, key: CacheKey, tag: [u8; 4]) -> Loaded {
        let lkey = Self::lru_key(kind, key, tag);
        let mut shard = self.shards[self.shard_index(key)]
            .lock()
            .expect("shard lock poisoned");
        if let Some(bytes) = shard.lru.get(&lkey) {
            let payload = bytes.to_vec();
            self.lru_hits.fetch_add(1, Ordering::Relaxed);
            // The memory tier short-circuits `Store::load`, so its hits
            // carry their own registry counter (disk-tier outcomes are
            // counted inside `Store`).
            if telemetry::metrics_enabled() {
                telemetry::counter_with("autoax_store_lru_hits_total", &[("kind", kind)]).inc();
            }
            return Loaded::Hit(payload);
        }
        match shard.store.load(kind, key, tag) {
            Loaded::Hit(payload) => {
                shard.lru.insert(&lkey, payload.clone());
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                Loaded::Hit(payload)
            }
            other => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                other
            }
        }
    }

    fn save_blob(
        &self,
        kind: &str,
        key: CacheKey,
        tag: [u8; 4],
        payload: Vec<u8>,
    ) -> Result<(), StoreError> {
        let lkey = Self::lru_key(kind, key, tag);
        let mut shard = self.shards[self.shard_index(key)]
            .lock()
            .expect("shard lock poisoned");
        shard.store.save(kind, key, tag, payload.clone())?;
        // Updated under the same lock that wrote the file: a load after
        // this save (on any thread) sees the new bytes, never stale ones.
        shard.lru.insert(&lkey, payload);
        self.saves.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// Routes a key to a shard directory name without building a store —
/// used by tooling that wants to inspect the layout.
pub fn shard_dir(root: &Path, bits: u32, key: CacheKey) -> PathBuf {
    let bits = bits.min(8);
    let idx = if bits == 0 {
        0
    } else {
        (key.hi >> (64 - bits)) as usize
    };
    root.join(format!("shard-{idx:02x}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::KeyHasher;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("autoax-sharded-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn key(n: u64) -> CacheKey {
        let mut h = KeyHasher::new("sharded-test");
        h.write_u64(n);
        h.finish()
    }

    #[test]
    fn round_trips_and_counts_tiers() {
        let s = ShardedStore::new(temp_dir("tiers"), 3, 1 << 16);
        let k = key(1);
        s.save_blob("unit", k, *b"UNIT", vec![9; 32]).unwrap();
        // 1st load: LRU hit (save populated the memory tier)
        assert!(matches!(s.load_blob("unit", k, *b"UNIT"), Loaded::Hit(p) if p == vec![9; 32]));
        s.flush_memory();
        // 2nd load: disk hit, promoted back into the LRU
        assert!(matches!(s.load_blob("unit", k, *b"UNIT"), Loaded::Hit(_)));
        // 3rd load: LRU hit again
        assert!(matches!(s.load_blob("unit", k, *b"UNIT"), Loaded::Hit(_)));
        assert!(matches!(
            s.load_blob("unit", key(2), *b"UNIT"),
            Loaded::Miss
        ));
        let st = s.stats();
        assert_eq!(
            (st.lru_hits, st.disk_hits, st.misses, st.saves),
            (2, 1, 1, 1)
        );
    }

    #[test]
    fn overwrite_is_visible_from_both_tiers() {
        let s = ShardedStore::new(temp_dir("overwrite"), 2, 1 << 16);
        let k = key(3);
        s.save_blob("unit", k, *b"UNIT", vec![1, 1]).unwrap();
        s.save_blob("unit", k, *b"UNIT", vec![2, 2, 2]).unwrap();
        assert!(matches!(s.load_blob("unit", k, *b"UNIT"), Loaded::Hit(p) if p == vec![2, 2, 2]));
        s.flush_memory();
        assert!(matches!(s.load_blob("unit", k, *b"UNIT"), Loaded::Hit(p) if p == vec![2, 2, 2]));
    }

    #[test]
    fn keys_spread_over_shards_and_stay_stable() {
        let s = ShardedStore::new(temp_dir("spread"), 4, 1 << 12);
        assert_eq!(s.shard_count(), 16);
        let mut seen = std::collections::HashSet::new();
        for n in 0..64 {
            let k = key(n);
            let idx = s.shard_index(k);
            assert!(idx < 16);
            assert_eq!(idx, s.shard_index(k), "routing must be deterministic");
            seen.insert(idx);
        }
        assert!(seen.len() > 4, "64 keys should land on many shards");
    }

    #[test]
    fn corrupt_disk_entry_is_rejected_not_served() {
        let s = ShardedStore::new(temp_dir("corrupt"), 1, 1 << 16);
        let k = key(5);
        s.save_blob("unit", k, *b"UNIT", vec![7; 64]).unwrap();
        let path = s.entry_path("unit", k);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&path, bytes).unwrap();
        s.flush_memory();
        assert!(matches!(
            s.load_blob("unit", k, *b"UNIT"),
            Loaded::Rejected(StoreError::Checksum)
        ));
    }

    #[test]
    fn zero_bits_degenerates_to_one_shard() {
        let s = ShardedStore::new(temp_dir("one"), 0, 1 << 12);
        assert_eq!(s.shard_count(), 1);
        assert_eq!(s.shard_index(key(1)), 0);
        assert_eq!(s.shard_index(key(99)), 0);
    }
}
