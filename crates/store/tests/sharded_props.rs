//! Property tests for [`ShardedStore`]: under arbitrary operation
//! interleavings it must be observationally identical to the plain
//! unsharded [`Store`] (sharding + the LRU tier are pure performance,
//! never semantics), and the LRU may never serve stale bytes once a key
//! has been overwritten.

use autoax_store::cache::KeyHasher;
use autoax_store::{BlobStore, CacheKey, Loaded, ShardedStore, Store};
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

const KIND: &str = "prop";
const TAG: [u8; 4] = *b"PROP";

/// Fresh scratch directory per proptest case (cases run sequentially
/// within a test, but tests run in parallel across threads).
fn scratch(label: &str) -> PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "autoax-store-props-{}-{label}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small fixed key alphabet, so interleavings revisit keys often
/// (that is where overwrite/promotion bugs live, not in fresh keys).
fn key(idx: usize) -> CacheKey {
    let mut h = KeyHasher::new("sharded-props");
    h.write_u64(idx as u64);
    h.finish()
}

/// One scripted operation: `(op, key index, payload)`.
/// op 0 = save, 1 = load, 2 = drop the sharded store's memory tier
/// (a no-op for the unsharded reference — semantics must not change).
type Op = (u8, usize, Vec<u8>);

fn op_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (
            0u8..3,
            0usize..4,
            proptest::collection::vec(any::<u8>(), 0..48),
        ),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Replays the same script against the sharded store and the plain
    /// store; every load must observe the same outcome from both.
    #[test]
    fn sharded_store_is_observationally_a_store(ops in op_strategy()) {
        let sharded = ShardedStore::new(scratch("pair-sharded"), 3, 1 << 12);
        let plain = Store::new(scratch("pair-plain"));
        for (op, idx, payload) in ops {
            match op {
                0 => {
                    sharded.save_blob(KIND, key(idx), TAG, payload.clone()).unwrap();
                    plain.save_blob(KIND, key(idx), TAG, payload).unwrap();
                }
                1 => {
                    let a = sharded.load_blob(KIND, key(idx), TAG);
                    let b = plain.load_blob(KIND, key(idx), TAG);
                    match (a, b) {
                        (Loaded::Hit(x), Loaded::Hit(y)) => prop_assert_eq!(x, y),
                        (Loaded::Miss, Loaded::Miss) => {}
                        (a, b) => prop_assert!(
                            false,
                            "stores disagree on key {}: sharded={a:?} plain={b:?}",
                            idx
                        ),
                    }
                }
                _ => sharded.flush_memory(),
            }
        }
    }

    /// After any interleaving of saves, loads and memory flushes, a load
    /// returns the *last* payload saved under the key — from whichever
    /// tier answers. The memory tier may never serve bytes an overwrite
    /// obsoleted.
    #[test]
    fn lru_never_serves_stale_bytes(ops in op_strategy()) {
        let sharded = ShardedStore::new(scratch("stale"), 2, 1 << 12);
        let mut last_written: HashMap<usize, Vec<u8>> = HashMap::new();
        for (op, idx, payload) in ops {
            match op {
                0 => {
                    sharded.save_blob(KIND, key(idx), TAG, payload.clone()).unwrap();
                    last_written.insert(idx, payload);
                }
                1 => match (sharded.load_blob(KIND, key(idx), TAG), last_written.get(&idx)) {
                    (Loaded::Hit(got), Some(want)) => prop_assert_eq!(&got, want),
                    (Loaded::Miss, None) => {}
                    (got, want) => prop_assert!(
                        false,
                        "key {}: got {got:?}, model has {want:?}",
                        idx
                    ),
                },
                _ => sharded.flush_memory(),
            }
        }
        // Closing sweep: every key the script ever wrote still reads
        // back as its final payload, through the LRU and past it.
        for (idx, want) in &last_written {
            match sharded.load_blob(KIND, key(*idx), TAG) {
                Loaded::Hit(got) => prop_assert_eq!(&got, want, "pre-flush key {}", idx),
                other => prop_assert!(false, "pre-flush key {}: {other:?}", idx),
            }
        }
        sharded.flush_memory();
        for (idx, want) in &last_written {
            match sharded.load_blob(KIND, key(*idx), TAG) {
                Loaded::Hit(got) => prop_assert_eq!(&got, want, "post-flush key {}", idx),
                other => prop_assert!(false, "post-flush key {}: {other:?}", idx),
            }
        }
    }
}
