//! `autoax-telemetry` — the workspace's hand-rolled observability layer.
//!
//! Three independent facilities, all crates.io-free per the shims policy:
//!
//! * [`metrics`] — a process-wide registry of atomic counters, gauges and
//!   log-bucketed histograms with percentile queries, rendered on demand in
//!   Prometheus text exposition format. Handles are plain `Arc`ed atomics;
//!   the *call sites* gate on [`metrics_enabled`], so an unsubscribed
//!   process pays exactly one relaxed atomic load per hot-path event.
//! * [`mod@span`] — structured spans (id, parent, name, `key=value` fields,
//!   monotonic start/stop) recorded into a thread-safe collector that
//!   exports Chrome-trace JSON (loadable in `chrome://tracing` /
//!   `ui.perfetto.dev`) and a folded-stacks text profile.
//! * [`log`] — a leveled stderr logger (`AUTOAX_LOG=error|warn|info|debug|
//!   trace`) behind `ax_error!`/`ax_warn!`/`ax_info!`/`ax_debug!`/
//!   `ax_trace!` macros, replacing ad-hoc `eprintln!`s. Silent by default.
//!
//! ## Enablement model
//!
//! Everything is off by default and *never* affects computation — the
//! instrumented code paths produce byte-identical results whether the
//! registry is subscribed or not (guarded by the pinned front-digest test
//! in the root crate). Binaries opt in explicitly:
//!
//! * [`set_metrics`]`(true)` — start accumulating metrics (what
//!   `autoax-serve` does on spawn, and what `/metrics` exposes).
//! * [`set_tracing`]`(true)` — start collecting spans (what `quickstart`
//!   does when `AUTOAX_TRACE=<path>` is set).
//! * `AUTOAX_LOG=<level>` — enable the leveled logger.
//!
//! [`init_from_env`] wires all three knobs from the environment in one
//! call; it is what the shipped binaries use.

pub mod log;
pub mod metrics;
pub mod span;

pub use metrics::{counter, counter_with, gauge, gauge_with, histogram, histogram_with};
pub use metrics::{render_prometheus, Counter, Gauge, Histogram};
pub use span::{
    dropped_spans, export_chrome_trace, export_folded, snapshot_spans, span, take_spans, Span,
    SpanRecord,
};

use std::sync::atomic::{AtomicBool, Ordering};

/// Environment variable holding the leveled-logger threshold.
pub const LOG_ENV: &str = "AUTOAX_LOG";
/// Environment variable holding the Chrome-trace output path (its presence
/// turns span collection on in binaries that call [`init_from_env`]).
pub const TRACE_ENV: &str = "AUTOAX_TRACE";
/// Environment variable forcing the metrics registry on (`1`) or off (`0`).
pub const METRICS_ENV: &str = "AUTOAX_METRICS";

static METRICS_ON: AtomicBool = AtomicBool::new(false);
static TRACING_ON: AtomicBool = AtomicBool::new(false);

/// One relaxed load: is the metrics registry subscribed? Hot call sites
/// check this before touching any handle, so the unsubscribed cost of an
/// instrumented event is exactly this load.
#[inline(always)]
pub fn metrics_enabled() -> bool {
    METRICS_ON.load(Ordering::Relaxed)
}

/// One relaxed load: is the span collector active?
#[inline(always)]
pub fn tracing_enabled() -> bool {
    TRACING_ON.load(Ordering::Relaxed)
}

/// Subscribes (or unsubscribes) the global metrics registry. Handles keep
/// their accumulated values across toggles; only *new* events are gated.
pub fn set_metrics(on: bool) {
    METRICS_ON.store(on, Ordering::Relaxed);
}

/// Turns span collection on or off. Spans opened while tracing is off are
/// free (no id, no record) even if tracing is re-enabled before they drop.
pub fn set_tracing(on: bool) {
    TRACING_ON.store(on, Ordering::Relaxed);
}

/// The Chrome-trace output path requested via `AUTOAX_TRACE`, if any.
pub fn trace_path_from_env() -> Option<String> {
    std::env::var(TRACE_ENV).ok().filter(|p| !p.is_empty())
}

/// Wires all telemetry knobs from the environment: `AUTOAX_LOG` (logger
/// threshold), `AUTOAX_TRACE` (non-empty ⇒ tracing on), `AUTOAX_METRICS`
/// (`1` ⇒ registry on, `0` ⇒ off). Call once near the top of `main`.
pub fn init_from_env() {
    log::init_level_from_env();
    if trace_path_from_env().is_some() {
        set_tracing(true);
    }
    match std::env::var(METRICS_ENV).ok().as_deref() {
        Some("1") | Some("true") | Some("on") => set_metrics(true),
        Some("0") | Some("false") | Some("off") => set_metrics(false),
        _ => {}
    }
}
