//! Leveled stderr logger behind `ax_error!` … `ax_trace!` macros.
//!
//! Silent by default: the threshold starts at `off` and is raised either
//! by the `AUTOAX_LOG` environment variable (`error|warn|info|debug|
//! trace`, parsed lazily on first use) or programmatically via
//! [`set_max_level`]. An enabled check is one relaxed atomic load, so the
//! macros are safe to leave in warm paths.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Once;

/// Log severities, most to least severe.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
#[repr(u8)]
pub enum Level {
    Error = 1,
    Warn = 2,
    Info = 3,
    Debug = 4,
    Trace = 5,
}

impl Level {
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" | "1" => Some(Level::Error),
            "warn" | "warning" | "2" => Some(Level::Warn),
            "info" | "3" => Some(Level::Info),
            "debug" | "4" => Some(Level::Debug),
            "trace" | "5" => Some(Level::Trace),
            _ => None,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

/// Current threshold; 0 = off.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);
static ENV_INIT: Once = Once::new();

/// Applies `AUTOAX_LOG` to the threshold (first call wins; later calls are
/// no-ops). Invoked lazily by [`log_enabled`], so binaries need no setup —
/// but an explicit [`set_max_level`] before first use overrides the env.
pub fn init_level_from_env() {
    ENV_INIT.call_once(|| {
        if let Ok(v) = std::env::var(crate::LOG_ENV) {
            if let Some(l) = Level::parse(&v) {
                MAX_LEVEL.store(l as u8, Ordering::Relaxed);
            }
        }
    });
}

/// Sets the threshold programmatically; `None` silences the logger. Also
/// marks the env as consumed so `AUTOAX_LOG` won't overwrite this later.
pub fn set_max_level(level: Option<Level>) {
    ENV_INIT.call_once(|| {});
    MAX_LEVEL.store(level.map(|l| l as u8).unwrap_or(0), Ordering::Relaxed);
}

/// Would a message at `level` be emitted? One relaxed load after the
/// one-time env parse.
#[inline]
pub fn log_enabled(level: Level) -> bool {
    init_level_from_env();
    (level as u8) <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Writes one formatted line to stderr. Called by the macros after their
/// [`log_enabled`] check; not intended for direct use.
pub fn log(level: Level, target: &str, args: std::fmt::Arguments<'_>) {
    eprintln!("[{} {}] {}", level.as_str(), target, args);
}

#[macro_export]
macro_rules! ax_error {
    ($($arg:tt)*) => {
        if $crate::log::log_enabled($crate::log::Level::Error) {
            $crate::log::log($crate::log::Level::Error, module_path!(), format_args!($($arg)*));
        }
    };
}

#[macro_export]
macro_rules! ax_warn {
    ($($arg:tt)*) => {
        if $crate::log::log_enabled($crate::log::Level::Warn) {
            $crate::log::log($crate::log::Level::Warn, module_path!(), format_args!($($arg)*));
        }
    };
}

#[macro_export]
macro_rules! ax_info {
    ($($arg:tt)*) => {
        if $crate::log::log_enabled($crate::log::Level::Info) {
            $crate::log::log($crate::log::Level::Info, module_path!(), format_args!($($arg)*));
        }
    };
}

#[macro_export]
macro_rules! ax_debug {
    ($($arg:tt)*) => {
        if $crate::log::log_enabled($crate::log::Level::Debug) {
            $crate::log::log($crate::log::Level::Debug, module_path!(), format_args!($($arg)*));
        }
    };
}

#[macro_export]
macro_rules! ax_trace {
    ($($arg:tt)*) => {
        if $crate::log::log_enabled($crate::log::Level::Trace) {
            $crate::log::log($crate::log::Level::Trace, module_path!(), format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("warn"), Some(Level::Warn));
        assert_eq!(Level::parse("WARNING"), Some(Level::Warn));
        assert_eq!(Level::parse(" trace "), Some(Level::Trace));
        assert_eq!(Level::parse("3"), Some(Level::Info));
        assert_eq!(Level::parse("loud"), None);
        assert_eq!(Level::parse(""), None);
    }

    #[test]
    fn level_ordering() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
    }

    #[test]
    fn threshold_gating() {
        set_max_level(Some(Level::Info));
        assert!(log_enabled(Level::Error));
        assert!(log_enabled(Level::Info));
        assert!(!log_enabled(Level::Debug));
        set_max_level(None);
        assert!(!log_enabled(Level::Error));
    }
}
