//! Lock-light metrics: counters, gauges, log-bucketed histograms, and a
//! process-wide registry rendered in Prometheus text exposition format.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`ed atomics:
//! every operation is wait-free and safe from any thread. The registry is
//! only locked at registration time (once per call site, typically cached
//! in a `OnceLock`) and at export time (`GET /metrics`) — never on the
//! event path. Gating is the *call site's* job via
//! [`crate::metrics_enabled`]; the handles themselves always record, which
//! keeps their unit semantics testable without global state.
//!
//! ## Histogram bucketing
//!
//! Log-linear ("HDR-lite") layout with [`SUB`] = 32 sub-buckets per
//! power-of-two octave: values `0..32` get exact unit buckets, then every
//! octave `[2^k, 2^(k+1))` is split into 32 equal sub-buckets, so the
//! worst-case relative quantization error is `1/32` ≈ 3.2%. Values up to
//! 63 are represented exactly (octave 5's sub-bucket width is still 1).
//! The full `u64` range maps into [`BUCKETS`] = 1920 slots; `u64::MAX`
//! lands in the last bucket without overflow.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Sub-bucket count per octave (and the exact-bucket span `0..SUB`).
pub const SUB: usize = 32;
const SUB_BITS: u32 = 5;
/// Total histogram buckets covering all of `u64`: 32 exact unit buckets
/// plus 32 sub-buckets for each of the 59 octaves `[2^5, 2^64)`.
pub const BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// Monotonic event counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh, detached counter (not in any registry). Registry-backed
    /// handles come from [`counter`] / [`counter_with`].
    pub fn new() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

/// Instantaneous signed level (e.g. busy workers, running jobs).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn new() -> Self {
        Gauge(Arc::new(AtomicI64::new(0)))
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

struct HistogramInner {
    counts: Box<[AtomicU64]>,
    total: AtomicU64,
    /// Saturating sum of recorded values (CAS loop; histograms are
    /// recorded at burst/round granularity, not per candidate).
    sum: AtomicU64,
}

/// Log-bucketed histogram of `u64` samples with percentile queries.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

/// Bucket index for a sample. Exact for `v < 64`; ≤ 1/32 relative error
/// beyond (log-linear, 32 sub-buckets per octave).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let top = 63 - v.leading_zeros(); // >= SUB_BITS
    let sub = ((v >> (top - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    SUB + (top - SUB_BITS) as usize * SUB + sub
}

/// Inclusive lower bound of a bucket — the value [`Histogram::quantile`]
/// reports when the rank falls inside it.
pub fn bucket_lower_bound(index: usize) -> u64 {
    if index < SUB {
        return index as u64;
    }
    let rel = index - SUB;
    let oct = (rel / SUB) as u32 + SUB_BITS;
    let sub = (rel % SUB) as u64;
    (1u64 << oct) + (sub << (oct - SUB_BITS))
}

/// Exclusive upper bound of a bucket (saturating at `u64::MAX`).
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index < SUB {
        return index as u64 + 1;
    }
    let oct = ((index - SUB) / SUB) as u32 + SUB_BITS;
    bucket_lower_bound(index).saturating_add(1u64 << (oct - SUB_BITS))
}

impl Histogram {
    pub fn new() -> Self {
        let counts: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramInner {
            counts: counts.into_boxed_slice(),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }

    /// Records one sample. Wait-free except for the saturating-sum CAS.
    pub fn record(&self, v: u64) {
        let inner = &*self.0;
        inner.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        inner.total.fetch_add(1, Ordering::Relaxed);
        // Saturate instead of wrapping so `sum`/`count` stays a usable
        // mean even after astronomically large samples (u64-overflow edge).
        let mut cur = inner.sum.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(v);
            match inner
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn count(&self) -> u64 {
        self.0.total.load(Ordering::Relaxed)
    }

    /// Saturating sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// The value at quantile `q ∈ [0, 1]` — the lower bound of the bucket
    /// holding the `ceil(q·count)`-th smallest sample (rank 1 for q = 0).
    /// Exact whenever the samples in that bucket equal its lower bound,
    /// which holds for all values < 64. `None` on an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, c) in self.0.counts.iter().enumerate() {
            cum += c.load(Ordering::Relaxed);
            if cum >= rank {
                return Some(bucket_lower_bound(i));
            }
        }
        // Unreachable unless samples raced in after `total` was read;
        // report the largest occupied bucket conservatively.
        Some(bucket_lower_bound(BUCKETS - 1))
    }

    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> Option<u64> {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Registry {
    /// Full id (`name{labels}`) → handle, plus insertion order for stable
    /// rendering.
    by_id: HashMap<String, usize>,
    entries: Vec<(String, Metric)>,
}

fn registry() -> &'static Mutex<Registry> {
    static REG: OnceLock<Mutex<Registry>> = OnceLock::new();
    REG.get_or_init(|| {
        Mutex::new(Registry {
            by_id: HashMap::new(),
            entries: Vec::new(),
        })
    })
}

/// Renders `name{k="v",…}` (or bare `name` without labels).
fn metric_id(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut id = String::with_capacity(name.len() + 16);
    id.push_str(name);
    id.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            id.push(',');
        }
        let _ = write!(id, "{}=\"{}\"", k, escape_label(v));
    }
    id.push('}');
    id
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn get_or_register<F: FnOnce() -> Metric>(id: String, make: F) -> Metric {
    let mut reg = registry().lock().expect("metrics registry poisoned");
    if let Some(&i) = reg.by_id.get(&id) {
        return match &reg.entries[i].1 {
            Metric::Counter(c) => Metric::Counter(c.clone()),
            Metric::Gauge(g) => Metric::Gauge(g.clone()),
            Metric::Histogram(h) => Metric::Histogram(h.clone()),
        };
    }
    let m = make();
    let clone = match &m {
        Metric::Counter(c) => Metric::Counter(c.clone()),
        Metric::Gauge(g) => Metric::Gauge(g.clone()),
        Metric::Histogram(h) => Metric::Histogram(h.clone()),
    };
    let slot = reg.entries.len();
    reg.by_id.insert(id.clone(), slot);
    reg.entries.push((id, m));
    clone
}

/// Registry-backed counter; repeated calls with the same id return clones
/// of one underlying atomic. A type clash with an existing id yields a
/// detached handle rather than panicking.
pub fn counter(name: &str) -> Counter {
    counter_with(name, &[])
}

pub fn counter_with(name: &str, labels: &[(&str, &str)]) -> Counter {
    match get_or_register(metric_id(name, labels), || Metric::Counter(Counter::new())) {
        Metric::Counter(c) => c,
        _ => Counter::new(),
    }
}

/// Registry-backed gauge (see [`counter`] for id semantics).
pub fn gauge(name: &str) -> Gauge {
    gauge_with(name, &[])
}

pub fn gauge_with(name: &str, labels: &[(&str, &str)]) -> Gauge {
    match get_or_register(metric_id(name, labels), || Metric::Gauge(Gauge::new())) {
        Metric::Gauge(g) => g,
        _ => Gauge::new(),
    }
}

/// Registry-backed histogram (see [`counter`] for id semantics).
pub fn histogram(name: &str) -> Histogram {
    histogram_with(name, &[])
}

pub fn histogram_with(name: &str, labels: &[(&str, &str)]) -> Histogram {
    match get_or_register(metric_id(name, labels), || {
        Metric::Histogram(Histogram::new())
    }) {
        Metric::Histogram(h) => h,
        _ => Histogram::new(),
    }
}

fn base_name(id: &str) -> &str {
    id.split('{').next().unwrap_or(id)
}

fn labels_part(id: &str) -> Option<&str> {
    let open = id.find('{')?;
    Some(&id[open + 1..id.len() - 1])
}

/// Appends `quantile="q"` (or similar extra pairs) to an id's label set.
fn id_with_extra(id: &str, extra: &str) -> String {
    match labels_part(id) {
        Some(l) => format!("{}{{{},{}}}", base_name(id), l, extra),
        None => format!("{}{{{}}}", base_name(id), extra),
    }
}

/// Renders every registered metric in Prometheus text exposition format.
/// Counters and gauges are single samples; histograms render as summaries
/// (`quantile="0.5|0.9|0.99"` plus `_sum` / `_count`) in the histogram's
/// native integer unit (the workspace convention is nanoseconds for
/// `*_ns` metrics).
pub fn render_prometheus() -> String {
    let reg = registry().lock().expect("metrics registry poisoned");
    let mut out = String::new();
    let mut typed: HashMap<&str, ()> = HashMap::new();
    for (id, metric) in &reg.entries {
        let base = base_name(id);
        let kind = match metric {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "summary",
        };
        if typed.insert(base, ()).is_none() {
            let _ = writeln!(out, "# TYPE {base} {kind}");
        }
        match metric {
            Metric::Counter(c) => {
                let _ = writeln!(out, "{id} {}", c.get());
            }
            Metric::Gauge(g) => {
                let _ = writeln!(out, "{id} {}", g.get());
            }
            Metric::Histogram(h) => {
                for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                    let v = h.quantile(q).unwrap_or(0);
                    let qid = id_with_extra(id, &format!("quantile=\"{label}\""));
                    let _ = writeln!(out, "{qid} {v}");
                }
                let sum_id = match labels_part(id) {
                    Some(l) => format!("{}_sum{{{}}}", base, l),
                    None => format!("{base}_sum"),
                };
                let count_id = match labels_part(id) {
                    Some(l) => format!("{}_count{{{}}}", base, l),
                    None => format!("{base}_count"),
                };
                let _ = writeln!(out, "{sum_id} {}", h.sum());
                let _ = writeln!(out, "{count_id} {}", h.count());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(7);
        g.inc();
        g.dec();
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn bucket_boundaries_are_exact_below_64() {
        for v in 0..64u64 {
            let i = bucket_index(v);
            assert_eq!(bucket_lower_bound(i), v, "value {v}");
            assert_eq!(bucket_upper_bound(i), v + 1, "value {v}");
        }
    }

    #[test]
    fn bucket_index_monotone_and_bounded() {
        let probes = [
            0u64,
            1,
            31,
            32,
            63,
            64,
            65,
            127,
            128,
            1000,
            4096,
            1 << 20,
            (1 << 20) + 12345,
            1 << 40,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut last = None;
        for &v in &probes {
            let i = bucket_index(v);
            assert!(i < BUCKETS, "index {i} for {v}");
            let (lo, hi) = (bucket_lower_bound(i), bucket_upper_bound(i));
            assert!(lo <= v, "lower bound {lo} > value {v}");
            assert!(v < hi || hi == u64::MAX, "value {v} >= upper {hi}");
            if let Some(l) = last {
                assert!(i >= l, "index not monotone at {v}");
            }
            last = Some(i);
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn relative_error_within_one_thirty_second() {
        for shift in 6..63u32 {
            let v = (1u64 << shift) + (1u64 << (shift - 1)) + 7;
            let lo = bucket_lower_bound(bucket_index(v));
            let err = (v - lo) as f64 / v as f64;
            assert!(err <= 1.0 / 32.0 + 1e-12, "err {err} at {v}");
        }
    }

    #[test]
    fn percentiles_exact_on_hand_built_distribution() {
        // 1..=50, each once: every value < 64 so quantiles are exact.
        let h = Histogram::new();
        for v in 1..=50u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 50);
        assert_eq!(h.sum(), 50 * 51 / 2);
        assert_eq!(h.p50(), Some(25));
        assert_eq!(h.p90(), Some(45));
        assert_eq!(h.p99(), Some(50));
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(1.0), Some(50));
    }

    #[test]
    fn percentiles_on_skewed_distribution() {
        // 99 fast samples at 10, one slow outlier at 4096.
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(4096);
        assert_eq!(h.p50(), Some(10));
        assert_eq!(h.p90(), Some(10));
        assert_eq!(h.p99(), Some(10));
        assert_eq!(h.quantile(1.0), Some(4096));
    }

    #[test]
    fn u64_overflow_edge_saturates() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(3);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(h.p50(), Some(bucket_lower_bound(bucket_index(u64::MAX))));
    }

    #[test]
    fn empty_histogram_query_is_none() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.p99(), None);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
    }

    #[test]
    fn registry_dedupes_and_renders_prometheus() {
        let a = counter_with("tm_test_requests_total", &[("route", "/jobs")]);
        let b = counter_with("tm_test_requests_total", &[("route", "/jobs")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same id must share one atomic");
        gauge("tm_test_busy").set(3);
        let h = histogram_with("tm_test_latency_ns", &[("phase", "estimate")]);
        for v in [1u64, 2, 3, 4] {
            h.record(v);
        }
        let text = render_prometheus();
        assert!(text.contains("# TYPE tm_test_requests_total counter"));
        assert!(text.contains("tm_test_requests_total{route=\"/jobs\"} 2"));
        assert!(text.contains("tm_test_busy 3"));
        assert!(text.contains("# TYPE tm_test_latency_ns summary"));
        assert!(text.contains("tm_test_latency_ns{phase=\"estimate\",quantile=\"0.5\"} 2"));
        assert!(text.contains("tm_test_latency_ns_sum{phase=\"estimate\"} 10"));
        assert!(text.contains("tm_test_latency_ns_count{phase=\"estimate\"} 4"));
    }
}
