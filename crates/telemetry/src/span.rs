//! Structured spans with a thread-safe collector and two export formats:
//! Chrome-trace JSON (`chrome://tracing` / Perfetto) and folded stacks
//! (one `root;child;leaf <self-time-µs>` line per unique path, the input
//! format of every flamegraph renderer).
//!
//! A [`Span`] is a scope guard: [`span`]`("name")` opens it, dropping it
//! records one [`SpanRecord`] with the id of the innermost span still open
//! *on the same thread* as its parent (cross-thread work — e.g. pool
//! bursts — starts fresh roots on the worker threads). While
//! [`crate::tracing_enabled`] is false the guard is inert: no id, no
//! thread-local traffic, no record — but it still captures its start
//! instant so [`Span::elapsed`]/[`Span::finish`] can feed duration sinks
//! like `PipelineTimings` whether or not tracing is on.
//!
//! The collector is bounded ([`MAX_SPANS`]); past the cap new records are
//! counted in [`dropped_spans`] instead of growing without limit.

use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Collector capacity; ~100 bytes/record ⇒ ≲ 100 MB worst case.
pub const MAX_SPANS: usize = 1 << 20;

/// One closed span as stored by the collector.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Unique nonzero id.
    pub id: u64,
    /// Enclosing span's id, or 0 for a thread root.
    pub parent: u64,
    pub name: &'static str,
    /// Small per-thread index (stable within a process, first-use order).
    pub thread: u64,
    /// Monotonic start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    pub dur_ns: u64,
    pub fields: Vec<(&'static str, String)>,
}

struct Collector {
    spans: Mutex<Vec<SpanRecord>>,
    dropped: AtomicU64,
}

fn collector() -> &'static Collector {
    static C: OnceLock<Collector> = OnceLock::new();
    C.get_or_init(|| Collector {
        spans: Mutex::new(Vec::new()),
        dropped: AtomicU64::new(0),
    })
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static TID: Cell<u64> = const { Cell::new(0) };
}

fn thread_index() -> u64 {
    TID.with(|t| {
        let v = t.get();
        if v != 0 {
            return v;
        }
        let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        t.set(v);
        v
    })
}

/// Scope guard for one traced region. Create via [`span`]; attach
/// `key=value` context with [`Span::field`]; the record is emitted on drop.
pub struct Span {
    start: Instant,
    /// 0 when tracing was off at creation: the guard is inert.
    id: u64,
    parent: u64,
    name: &'static str,
    fields: Vec<(&'static str, String)>,
}

/// Opens a span. One relaxed load when tracing is off (plus the monotonic
/// clock read that [`Span::elapsed`] needs either way).
pub fn span(name: &'static str) -> Span {
    let (id, parent) = if crate::tracing_enabled() {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let parent = STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied().unwrap_or(0);
            s.push(id);
            parent
        });
        (id, parent)
    } else {
        (0, 0)
    };
    // Epoch before start: the first span's relative timestamp stays >= 0.
    let _ = epoch();
    Span {
        start: Instant::now(),
        id,
        parent,
        name,
        fields: Vec::new(),
    }
}

impl Span {
    /// Attaches a `key=value` field (no-op on an inert guard).
    pub fn field(&mut self, key: &'static str, value: impl std::fmt::Display) {
        if self.id != 0 {
            self.fields.push((key, value.to_string()));
        }
    }

    /// Time since the span opened — live whether or not tracing is on, so
    /// instrumented stages can feed duration sinks like `PipelineTimings`.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Closes the span now and returns its duration.
    pub fn finish(self) -> Duration {
        let d = self.elapsed();
        drop(self);
        d
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        let dur = self.start.elapsed();
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Guards drop LIFO under normal scoping; the defensive scan
            // keeps the stack sound if a guard is moved out of order.
            if s.last() == Some(&self.id) {
                s.pop();
            } else if let Some(pos) = s.iter().rposition(|&x| x == self.id) {
                s.remove(pos);
            }
        });
        let rec = SpanRecord {
            id: self.id,
            parent: self.parent,
            name: self.name,
            thread: thread_index(),
            start_ns: self.start.saturating_duration_since(epoch()).as_nanos() as u64,
            dur_ns: dur.as_nanos() as u64,
            fields: std::mem::take(&mut self.fields),
        };
        let c = collector();
        let mut spans = c.spans.lock().expect("span collector poisoned");
        if spans.len() < MAX_SPANS {
            spans.push(rec);
        } else {
            c.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Clones the collected spans without draining them.
pub fn snapshot_spans() -> Vec<SpanRecord> {
    collector()
        .spans
        .lock()
        .expect("span collector poisoned")
        .clone()
}

/// Drains and returns the collected spans.
pub fn take_spans() -> Vec<SpanRecord> {
    std::mem::take(&mut *collector().spans.lock().expect("span collector poisoned"))
}

/// Spans discarded because the collector hit [`MAX_SPANS`].
pub fn dropped_spans() -> u64 {
    collector().dropped.load(Ordering::Relaxed)
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders spans as Chrome-trace JSON: one `ph:"X"` complete event per
/// span, microsecond timestamps relative to the process epoch, span fields
/// under `args`. Load the output in `chrome://tracing` or Perfetto.
pub fn export_chrome_trace(spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"autoax\",\"ph\":\"X\",\"ts\":{}.{:03},\"dur\":{}.{:03},\"pid\":1,\"tid\":{},\"args\":{{\"id\":{},\"parent\":{}",
            escape_json(s.name),
            s.start_ns / 1_000,
            s.start_ns % 1_000,
            s.dur_ns / 1_000,
            s.dur_ns % 1_000,
            s.thread,
            s.id,
            s.parent,
        );
        for (k, v) in &s.fields {
            let _ = write!(out, ",\"{}\":\"{}\"", escape_json(k), escape_json(v));
        }
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Renders spans as folded stacks (`root;child;leaf <self-µs>`), the
/// aggregate input format of flamegraph tools. Self time is a span's
/// duration minus its direct children's; paths follow parent links, with
/// unknown parents treated as roots.
pub fn export_folded(spans: &[SpanRecord]) -> String {
    use std::collections::HashMap;
    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    let mut child_ns: HashMap<u64, u64> = HashMap::new();
    for s in spans {
        if s.parent != 0 && by_id.contains_key(&s.parent) {
            *child_ns.entry(s.parent).or_insert(0) += s.dur_ns;
        }
    }
    let mut folded: HashMap<String, u64> = HashMap::new();
    for s in spans {
        let mut path = vec![s.name];
        let mut cur = s.parent;
        // Parent chains are acyclic by construction (ids are unique and a
        // parent always precedes its children); the depth cap is belt and
        // braces against a corrupted record set.
        let mut hops = 0;
        while cur != 0 && hops < 128 {
            match by_id.get(&cur) {
                Some(p) => {
                    path.push(p.name);
                    cur = p.parent;
                }
                None => break,
            }
            hops += 1;
        }
        path.reverse();
        let self_ns = s
            .dur_ns
            .saturating_sub(child_ns.get(&s.id).copied().unwrap_or(0));
        *folded.entry(path.join(";")).or_insert(0) += self_ns / 1_000;
    }
    let mut lines: Vec<(String, u64)> = folded.into_iter().collect();
    lines.sort();
    let mut out = String::new();
    for (path, us) in lines {
        let _ = writeln!(out, "{path} {us}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span tests toggle the global tracing flag; serialize them.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static M: Mutex<()> = Mutex::new(());
        M.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn nesting_records_parent_links() {
        let _g = guard();
        crate::set_tracing(true);
        {
            let mut a = span("tspan.outer");
            a.field("k", 42);
            {
                let _b = span("tspan.inner");
            }
        }
        crate::set_tracing(false);
        let spans = take_spans();
        let outer = spans
            .iter()
            .find(|s| s.name == "tspan.outer")
            .expect("outer recorded");
        let inner = spans
            .iter()
            .find(|s| s.name == "tspan.inner")
            .expect("inner recorded");
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.fields, vec![("k", "42".to_string())]);
        assert!(outer.dur_ns >= inner.dur_ns);
        assert!(outer.start_ns <= inner.start_ns);
    }

    #[test]
    fn disabled_spans_are_inert_but_still_time() {
        let _g = guard();
        crate::set_tracing(false);
        let before = snapshot_spans().len();
        let s = span("tspan.disabled");
        std::thread::sleep(Duration::from_millis(1));
        let d = s.finish();
        assert!(d >= Duration::from_millis(1), "elapsed works while inert");
        assert_eq!(snapshot_spans().len(), before, "no record emitted");
    }

    #[test]
    fn chrome_export_shape() {
        let recs = vec![
            SpanRecord {
                id: 1,
                parent: 0,
                name: "root",
                thread: 1,
                start_ns: 1_500,
                dur_ns: 10_000,
                fields: vec![("strategy", "hill\"x".to_string())],
            },
            SpanRecord {
                id: 2,
                parent: 1,
                name: "child",
                thread: 1,
                start_ns: 2_000,
                dur_ns: 4_000,
                fields: vec![],
            },
        ];
        let json = export_chrome_trace(&recs);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"root\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":10.000"));
        assert!(json.contains("\\\"x"), "field values are JSON-escaped");
        assert!(json.ends_with("}"));
    }

    #[test]
    fn folded_export_subtracts_child_time() {
        let recs = vec![
            SpanRecord {
                id: 1,
                parent: 0,
                name: "root",
                thread: 1,
                start_ns: 0,
                dur_ns: 10_000_000, // 10 ms
                fields: vec![],
            },
            SpanRecord {
                id: 2,
                parent: 1,
                name: "child",
                thread: 1,
                start_ns: 0,
                dur_ns: 4_000_000, // 4 ms
                fields: vec![],
            },
        ];
        let folded = export_folded(&recs);
        assert!(
            folded.contains("root 6000\n"),
            "self = 10ms - 4ms: {folded}"
        );
        assert!(folded.contains("root;child 4000\n"), "{folded}");
    }
}
