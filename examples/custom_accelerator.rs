//! Bringing your own accelerator to the methodology: implement the
//! [`Accelerator`] trait (software kernel + hardware netlist over named
//! operation slots) and the whole pipeline — profiling, WMED scoring,
//! model training, Algorithm 1 — works unchanged.
//!
//! The example builds a 4-pixel box smoother:
//! `out = (center + right + below + below-right) / 4`
//! with three replaceable adders (2× add8, 1× add9).
//!
//! ```sh
//! cargo run --release --example custom_accelerator
//! ```
//!
//! The same knobs as the other examples apply: `--strategy
//! hill|nsga2|random|uniform|exhaustive` selects the Step-3 search, and
//! `--cache-dir <path>` / `--cache off|read|rw` warm-start the library
//! characterization and the Steps-1/2 artifacts from the persistent
//! store:
//!
//! ```sh
//! cargo run --release --example custom_accelerator -- --strategy nsga2
//! cargo run --release --example custom_accelerator -- --cache-dir .axcache
//! ```

use autoax::pipeline::{run_pipeline, PipelineOptions};
use autoax::SearchAlgo;
use autoax_accel::accelerator::{Accelerator, OpObserver, OpSet, OpSlot};
use autoax_circuit::charlib::LibraryConfig;
use autoax_circuit::netlist::{Bus, Netlist};
use autoax_circuit::OpSignature;
use autoax_image::synthetic::benchmark_suite;
use autoax_store::{load_or_build_library, parse_cache_flags};

/// A 2×2 box smoother with approximable adders.
struct BoxSmoother {
    slots: Vec<OpSlot>,
}

impl BoxSmoother {
    fn new() -> Self {
        BoxSmoother {
            slots: vec![
                OpSlot::new("row0", OpSignature::ADD8),
                OpSlot::new("row1", OpSignature::ADD8),
                OpSlot::new("total", OpSignature::ADD9),
            ],
        }
    }
}

impl Accelerator for BoxSmoother {
    fn name(&self) -> &str {
        "Box smoother"
    }

    fn slots(&self) -> &[OpSlot] {
        &self.slots
    }

    fn kernel(&self, _mode: usize, n: &[u8; 9], ops: &OpSet, obs: &mut dyn OpObserver) -> u8 {
        // neighbourhood layout: n[4] = center, n[5] = right,
        // n[7] = below, n[8] = below-right
        let (c, r, b, d) = (n[4] as u64, n[5] as u64, n[7] as u64, n[8] as u64);
        obs.record(0, c, r);
        let s0 = ops.apply(0, c, r) & 0x1FF;
        obs.record(1, b, d);
        let s1 = ops.apply(1, b, d) & 0x1FF;
        obs.record(2, s0, s1);
        let t = ops.apply(2, s0, s1) & 0x3FF;
        (t >> 2) as u8
    }

    fn build_netlist(&self, impls: &[Netlist]) -> Netlist {
        assert_eq!(impls.len(), 3);
        let mut top = Netlist::new("box_smoother");
        let pixels: Vec<Bus> = (0..9).map(|_| top.input_bus(8)).collect();
        let cat = |a: &Bus, b: &Bus| -> Vec<autoax_circuit::NetId> {
            a.iter().chain(b.iter()).copied().collect()
        };
        let s0 = Bus(top.instantiate(&impls[0], &cat(&pixels[4], &pixels[5])));
        let s1 = Bus(top.instantiate(&impls[1], &cat(&pixels[7], &pixels[8])));
        let t = Bus(top.instantiate(&impls[2], &cat(&s0, &s1)));
        // out = t >> 2, 8 bits
        top.push_output_bus(&t.slice(2..10));
        top
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let (cache_dir, cache_mode) = parse_cache_flags(&args);
    let strategy = SearchAlgo::from_args(&args).unwrap_or(SearchAlgo::Hill);

    let lib_out = load_or_build_library(&LibraryConfig::tiny(), cache_dir.as_deref(), cache_mode);
    println!(
        "library: {} characterized circuits ({})",
        lib_out.lib.total_size(),
        if lib_out.cache_hit {
            format!("loaded from cache in {:.1?}", lib_out.load_time)
        } else {
            format!("built in {:.1?}", lib_out.build_time)
        }
    );
    let lib = lib_out.lib;
    let images = benchmark_suite(3, 96, 64, 5);
    let accel = BoxSmoother::new();
    let mut opts = PipelineOptions::quick().with_strategy(strategy);
    opts.cache_dir = cache_dir;
    opts.cache_mode = cache_mode;
    let result = run_pipeline(&accel, &lib, &images, &opts)?;
    println!("strategy: {}", result.timings.search_strategy);
    let t = &result.timings;
    if t.cache_hits > 0 {
        println!(
            "cache: warm start - steps 1-2 skipped, loaded in {:.1?} (hits {}, misses {})",
            t.cache_load, t.cache_hits, t.cache_misses
        );
    } else if t.cache_misses > 0 {
        println!(
            "cache: cold - steps 1-2 computed in {:.1?} (hits {}, misses {})",
            t.step12_compute, t.cache_hits, t.cache_misses
        );
    }
    println!(
        "{}: {} final Pareto configurations",
        accel.name(),
        result.final_front.len()
    );
    println!("  SSIM    area(um2)  energy(fJ)");
    for m in &result.final_front {
        println!("  {:.4}  {:9.1}  {:9.1}", m.qor, m.area, m.energy);
    }
    Ok(())
}
