//! The Gaussian-filter case studies (paper Section 4.2): approximate both
//! the fixed-coefficient filter (11 ops incl. shift-add constant
//! multipliers) and the generic filter (17 ops, evaluated across a σ
//! sweep of kernels).
//!
//! ```sh
//! cargo run --release --example gaussian_dse                      # default scale
//! cargo run --release --example gaussian_dse -- quick             # smoke scale
//! cargo run --release --example gaussian_dse -- --strategy nsga2  # swap the DSE algorithm
//! ```

use autoax::pipeline::{run_pipeline, PipelineOptions};
use autoax_accel::gaussian_fixed::FixedGaussian;
use autoax_accel::gaussian_generic::GenericGaussian;
use autoax_accel::Accelerator;
use autoax_circuit::charlib::{build_library, ClassCounts, LibraryConfig};
use autoax_image::synthetic::benchmark_suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "quick");
    let strategy = autoax::SearchAlgo::from_args(&args).unwrap_or(autoax::SearchAlgo::Hill);
    let (counts, n_images, sweep, mut opts) = if quick {
        (ClassCounts::tiny(), 2, 2, PipelineOptions::quick())
    } else {
        let mut o = PipelineOptions::paper_gf();
        o.train_configs = 250;
        o.test_configs = 100;
        o.search.max_evals = 50_000;
        o.final_eval_cap = 60;
        (ClassCounts::default_scale(), 4, 8, o)
    };
    opts = opts.with_strategy(strategy);
    // keep the generic-GF software simulation affordable
    let (w, h) = if quick { (64, 48) } else { (128, 96) };

    let lib = build_library(&LibraryConfig {
        counts,
        ..LibraryConfig::default()
    });
    println!("library: {} circuits", lib.total_size());
    let images = benchmark_suite(n_images, w, h, 11);

    for accel in [
        Box::new(FixedGaussian::new()) as Box<dyn Accelerator>,
        Box::new(GenericGaussian::with_sweep(sweep)) as Box<dyn Accelerator>,
    ] {
        println!("\n==== {} ====", accel.name());
        if accel.name() == "Generic GF" && !quick {
            // the 17-op accelerator is the expensive one; trim budgets
            opts.train_configs = 120;
            opts.test_configs = 60;
            opts.final_eval_cap = 40;
        }
        let result = run_pipeline(accel.as_ref(), &lib, &images, &opts)?;
        let (full, reduced, pseudo, final_n) = result.space_sizes_log10();
        println!("space: 10^{full:.1} -> 10^{reduced:.1}; pseudo {pseudo} -> final {final_n}");
        println!(
            "fidelity: SSIM {:.0}%/{:.0}%  area {:.0}%/{:.0}% (train/test)",
            result.fidelity.qor_train * 100.0,
            result.fidelity.qor_test * 100.0,
            result.fidelity.hw_train * 100.0,
            result.fidelity.hw_test * 100.0
        );
        println!("  SSIM    area(um2)  energy(fJ)");
        for m in result.final_front.iter().take(12) {
            println!("  {:.4}  {:9.1}  {:9.1}", m.qor, m.area, m.energy);
        }
        println!(
            "timings: preprocess {:.1?}, training data {:.1?}, search {:.1?} ({}), final eval {:.1?}",
            result.timings.preprocess,
            result.timings.training_data,
            result.timings.search,
            result.timings.search_strategy,
            result.timings.final_eval
        );
    }
    Ok(())
}
