//! DSE for the approximate DNN accelerator workload: the full three-step
//! methodology — operand profiling, WMED library pre-processing, model
//! construction, model-based search, real evaluation — on the quantized
//! MLP of `autoax-nn`, with **top-1 accuracy** as the QoR measure instead
//! of SSIM. Same pipeline code as the image studies; only the workload
//! differs.
//!
//! ```sh
//! cargo run --release --example nn_dse
//! cargo run --release --example nn_dse -- --strategy nsga2
//! ```
//!
//! Repeat runs warm-start the library characterization and the Steps-1/2
//! artifacts (reduced space, operand PMFs, fitted models) from the
//! persistent store, byte-identically:
//!
//! ```sh
//! cargo run --release --example nn_dse -- --cache-dir .axcache
//! cargo run --release --example nn_dse -- --cache-dir .axcache   # warm
//! ```

use autoax::pipeline::{run_pipeline, PipelineOptions};
use autoax::SearchAlgo;
use autoax_circuit::charlib::LibraryConfig;
use autoax_nn::NnScenario;
use autoax_store::{load_or_build_library, parse_cache_flags};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let (cache_dir, cache_mode) = parse_cache_flags(&args);
    let strategy = SearchAlgo::from_args(&args).unwrap_or(SearchAlgo::Hill);

    // 1. Approximate-component library (the NN workload draws from the
    //    mul8 and add16 classes), warm-started from the store when given
    //    a cache directory.
    let lib_out = load_or_build_library(&LibraryConfig::tiny(), cache_dir.as_deref(), cache_mode);
    println!(
        "library: {} characterized circuits ({})",
        lib_out.lib.total_size(),
        if lib_out.cache_hit {
            format!("loaded from cache in {:.1?}", lib_out.load_time)
        } else {
            format!("built in {:.1?}", lib_out.build_time)
        }
    );
    let lib = lib_out.lib;

    // 2. Deterministic synthetic classification workload: seeded blob
    //    dataset + a quantized MLP fitted on it (no network access).
    let (accel, samples) = NnScenario::tiny().build();
    let mlp = accel.mlp();
    println!(
        "network: {} -> {} -> {} quantized MLP, {} samples, exact-net label accuracy {:.3}",
        mlp.input_dim(),
        mlp.layers[0].out_dim,
        mlp.class_count(),
        samples.len(),
        accel.exact_label_accuracy(&samples)
    );

    // 3. The three-step methodology, unchanged.
    let mut opts = PipelineOptions::quick().with_strategy(strategy);
    opts.cache_dir = cache_dir;
    opts.cache_mode = cache_mode;
    let result = run_pipeline(&accel, &lib, &samples, &opts)?;
    println!("strategy: {}", result.timings.search_strategy);
    if result.final_front.is_empty() {
        return Err(format!("strategy {strategy} produced an empty final front").into());
    }

    let t = &result.timings;
    if t.cache_hits > 0 {
        println!(
            "cache: warm start - steps 1-2 skipped, loaded in {:.1?} (hits {}, misses {})",
            t.cache_load, t.cache_hits, t.cache_misses
        );
    } else if t.cache_misses > 0 {
        println!(
            "cache: cold - steps 1-2 computed in {:.1?} (hits {}, misses {})",
            t.step12_compute, t.cache_hits, t.cache_misses
        );
    }

    let (full, reduced, pseudo, final_n) = result.space_sizes_log10();
    println!("design space: 10^{full:.1} -> 10^{reduced:.1} after pre-processing");
    println!(
        "model fidelity ({} model): {:.0}% / area {:.0}% on held-out configs",
        result.qor_metric,
        result.fidelity.qor_test * 100.0,
        result.fidelity.hw_test * 100.0
    );
    println!("pseudo-Pareto set: {pseudo} configurations, final front: {final_n}");

    println!("\n  accuracy  area(um2)  energy(fJ)");
    for m in &result.final_front {
        println!("  {:8.4}  {:9.1}  {:10.1}", m.qor, m.area, m.energy);
    }
    let best = result
        .final_front
        .iter()
        .map(|m| m.qor)
        .fold(f64::NEG_INFINITY, f64::max);
    if !(0.0..=1.0).contains(&best) {
        return Err(format!("accuracy out of [0, 1]: {best}").into());
    }
    println!("best-accuracy: {best:.4}");

    // Cold and warm runs must agree on this digest bit for bit (CI
    // compares the two lines, as for the Sobel quickstart).
    println!("front-digest: {:016x}", result.front_digest());
    Ok(())
}
