//! Observability smoke: boots `autoax-serve` on loopback, drives one
//! job through it with a caller-supplied request id, and asserts the
//! telemetry surface end to end — `/healthz` answers 200, the
//! `X-Request-Id` header is echoed and threaded into the NDJSON job
//! events, and `/metrics` exposes nonzero job and cache counters in
//! Prometheus text format. CI's `obs-smoke` job greps the `[obs]`
//! lines; any violated expectation exits nonzero.
//!
//! ```sh
//! cargo run --release --example obs_smoke
//! ```

use autoax_serve::client;
use autoax_serve::{Json, ServerConfig};

fn job_body(seed: u64) -> Json {
    autoax_serve::json::obj([
        ("workload", Json::Str("sobel".into())),
        ("library", Json::Str("tiny".into())),
        ("strategy", Json::Str("hill".into())),
        ("max_evals", Json::Num(300.0)),
        ("train_configs", Json::Num(16.0)),
        ("test_configs", Json::Num(10.0)),
        ("final_eval_cap", Json::Num(8.0)),
        ("seed", Json::Num(seed as f64)),
    ])
}

/// The value of the first Prometheus sample whose name starts with
/// `prefix` (label sets and all), if any line matches.
fn sample_value(metrics: &str, prefix: &str) -> Option<f64> {
    metrics
        .lines()
        .filter(|l| !l.starts_with('#'))
        .find(|l| l.starts_with(prefix))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cache_dir = std::env::temp_dir().join(format!("autoax-obs-smoke-{}", std::process::id()));
    let server = autoax_serve::spawn(ServerConfig::on_loopback(&cache_dir))?;
    let addr = server.addr();
    println!("[obs] serving on http://{addr}");

    // Liveness endpoint.
    let health = client::request(addr, "GET", "/healthz", &[], None)?;
    if health.status != 200 {
        return Err(format!("/healthz returned {}", health.status).into());
    }
    println!("[obs] healthz ok");

    // A job with a caller-supplied request id: the id must come back in
    // the response header and in both NDJSON lifecycle events.
    let resp = client::request(
        addr,
        "POST",
        "/jobs",
        &[("x-tenant", "obs"), ("x-request-id", "obs-smoke-1")],
        Some(&job_body(42)),
    )?;
    if resp.status != 200 {
        return Err(format!("job returned {}: {:?}", resp.status, resp.error()).into());
    }
    if resp.header("x-request-id") != Some("obs-smoke-1") {
        return Err(format!("X-Request-Id not echoed: {:?}", resp.headers).into());
    }
    for event in ["accepted", "done"] {
        let id = resp
            .event(event)
            .and_then(|e| e.get("request_id"))
            .and_then(Json::as_str);
        if id != Some("obs-smoke-1") {
            return Err(format!("`{event}` event lacks the request id: {id:?}").into());
        }
    }
    println!(
        "[obs] job ok: served={} digest={}",
        resp.served().unwrap_or("?"),
        resp.front_digest().unwrap_or("?")
    );

    // An identical repeat is answered from the result cache — that's the
    // cache-counter traffic the /metrics assertions below rely on.
    let repeat = client::submit_job(addr, "obs", &job_body(42))?;
    if repeat.served() != Some("cached") {
        return Err(format!("repeat not served from cache: {:?}", repeat.served()).into());
    }
    // A server-generated id must still be present (and non-empty).
    if repeat.header("x-request-id").is_none_or(str::is_empty) {
        return Err("repeat response lacks a generated X-Request-Id".into());
    }

    // The metrics endpoint: Prometheus text format with nonzero job and
    // store counters after the traffic above.
    let metrics = client::request(addr, "GET", "/metrics", &[], None)?;
    if metrics.status != 200 {
        return Err(format!("/metrics returned {}", metrics.status).into());
    }
    // /metrics is not NDJSON; re-fetch the raw text via a tiny inline read.
    let text = {
        use std::io::{Read, Write};
        let mut s = std::net::TcpStream::connect(addr)?;
        s.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")?;
        let mut buf = String::new();
        s.read_to_string(&mut buf)?;
        buf
    };
    for (what, prefix, min) in [
        ("jobs counter", "autoax_serve_jobs_total", 1.0),
        (
            "cache-hit counter",
            "autoax_serve_jobs_total{served=\"cached\"}",
            1.0,
        ),
        ("request counter", "autoax_serve_requests_total", 1.0),
        ("store load counter", "autoax_store_loads_total", 1.0),
    ] {
        match sample_value(&text, prefix) {
            Some(v) if v >= min => println!("[obs] metrics {what}: {v}"),
            other => return Err(format!("{what} missing or zero in /metrics: {other:?}").into()),
        }
    }
    if !text.contains("# TYPE") {
        return Err("/metrics lacks Prometheus TYPE lines".into());
    }

    server.stop();
    let _ = std::fs::remove_dir_all(&cache_dir);
    println!("[obs] ok");
    Ok(())
}
