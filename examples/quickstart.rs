//! Quickstart: run the complete autoAx methodology on the Sobel edge
//! detector with a small generated library.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Repeat runs can warm-start from the persistent store — the library
//! characterization and the Steps-1/2 artifacts (reduced space, PMFs,
//! fitted models) are loaded instead of recomputed, with byte-identical
//! results:
//!
//! ```sh
//! cargo run --release --example quickstart -- --cache-dir .axcache
//! cargo run --release --example quickstart -- --cache-dir .axcache   # warm
//! ```
//!
//! The Step-3 search strategy is selectable (default: the paper's island
//! hill climb):
//!
//! ```sh
//! cargo run --release --example quickstart -- --strategy nsga2
//! cargo run --release --example quickstart -- --strategy random
//! ```
//!
//! `--refine` turns on epoch-interleaved active-learning refinement
//! (the paper's Step 2/3 loop): between search epochs the most
//! informative candidates are real-evaluated and folded back into the
//! surrogate training set, and the run reports fidelity before/after.
//!
//! The run is observable without changing its result (the front digest
//! is byte-identical either way):
//!
//! ```sh
//! AUTOAX_LOG=debug AUTOAX_TRACE=trace.json cargo run --release --example quickstart
//! ```
//!
//! writes a Chrome-trace JSON (load it at `chrome://tracing` or in
//! Perfetto) plus a folded-stacks profile next to it (`trace.folded`).

use autoax::pipeline::{run_pipeline, PipelineOptions};
use autoax::{RefinementSchedule, SearchAlgo};
use autoax_accel::sobel::SobelEd;
use autoax_circuit::charlib::LibraryConfig;
use autoax_image::synthetic::benchmark_suite;
use autoax_store::{load_or_build_library, parse_cache_flags};
use autoax_telemetry as telemetry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    telemetry::init_from_env();
    let args: Vec<String> = std::env::args().collect();
    let (cache_dir, cache_mode) = parse_cache_flags(&args);
    let strategy = SearchAlgo::from_args(&args).unwrap_or(SearchAlgo::Hill);
    let refine = args.iter().any(|a| a == "--refine");

    // 1. Generate and characterize a small approximate-component library
    //    (the stand-in for downloading EvoApprox8b), warm-starting from
    //    the store when a cache directory is given.
    let lib_out = load_or_build_library(&LibraryConfig::tiny(), cache_dir.as_deref(), cache_mode);
    println!(
        "library: {} characterized circuits ({})",
        lib_out.lib.total_size(),
        if lib_out.cache_hit {
            format!("loaded from cache in {:.1?}", lib_out.load_time)
        } else {
            format!("built in {:.1?}", lib_out.build_time)
        }
    );
    let lib = lib_out.lib;

    // 2. Benchmark images (synthetic Berkeley-dataset substitute).
    let images = benchmark_suite(4, 96, 64, 7);

    // 3. Run the three-step methodology with small budgets.
    let accel = SobelEd::new();
    let mut opts = PipelineOptions::quick().with_strategy(strategy);
    opts.cache_dir = cache_dir;
    opts.cache_mode = cache_mode;
    if refine {
        opts.search.refine = RefinementSchedule::quick();
    }
    let result = run_pipeline(&accel, &lib, &images, &opts)?;
    println!("strategy: {}", result.timings.search_strategy);
    if result.final_front.is_empty() {
        return Err(format!("strategy {strategy} produced an empty final front").into());
    }

    let t = &result.timings;
    if t.cache_hits > 0 {
        println!(
            "cache: warm start - steps 1-2 skipped, loaded in {:.1?} (hits {}, misses {})",
            t.cache_load, t.cache_hits, t.cache_misses
        );
    } else {
        println!(
            "cache: cold - steps 1-2 computed in {:.1?} (hits {}, misses {})",
            t.step12_compute, t.cache_hits, t.cache_misses
        );
    }

    let (full, reduced, pseudo, final_n) = result.space_sizes_log10();
    println!("design space: 10^{full:.1} -> 10^{reduced:.1} after pre-processing");
    println!(
        "model fidelity (random forest): SSIM {:.0}% / area {:.0}% on held-out configs",
        result.fidelity.qor_test * 100.0,
        result.fidelity.hw_test * 100.0
    );
    if let Some(r) = &result.refinement {
        println!(
            "refinement: fidelity qor {:.4} -> {:.4}, hw {:.4} -> {:.4} ({} real evals, {} epochs)",
            r.before.qor_test,
            r.after.qor_test,
            r.before.hw_test,
            r.after.hw_test,
            r.real_evals,
            r.epochs_run
        );
    }
    println!("pseudo-Pareto set: {pseudo} configurations, final front: {final_n}");
    println!("\n  SSIM    area(um2)  energy(fJ)");
    for m in &result.final_front {
        println!("  {:.4}  {:9.1}  {:9.1}", m.qor, m.area, m.energy);
    }

    // A digest of the final front: cold and warm runs must agree on it
    // bit for bit (the CI cache smoke job compares the two lines).
    println!("front-digest: {:016x}", result.front_digest());

    // Export the trace if AUTOAX_TRACE named a file; the digest above is
    // printed first so observation visibly never perturbs the result.
    if let Some(path) = telemetry::trace_path_from_env() {
        let spans = telemetry::take_spans();
        std::fs::write(&path, telemetry::export_chrome_trace(&spans))?;
        let folded = std::path::Path::new(&path).with_extension("folded");
        std::fs::write(&folded, telemetry::export_folded(&spans))?;
        println!(
            "trace: {} spans -> {path} (chrome://tracing) + {} (flamegraph folded)",
            spans.len(),
            folded.display()
        );
    }
    Ok(())
}
