//! Quickstart: run the complete autoAx methodology on the Sobel edge
//! detector with a small generated library.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use autoax::pipeline::{run_pipeline, PipelineOptions};
use autoax_accel::sobel::SobelEd;
use autoax_circuit::charlib::{build_library, LibraryConfig};
use autoax_image::synthetic::benchmark_suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate and characterize a small approximate-component library
    //    (the stand-in for downloading EvoApprox8b).
    let lib = build_library(&LibraryConfig::tiny());
    println!("library: {} characterized circuits", lib.total_size());

    // 2. Benchmark images (synthetic Berkeley-dataset substitute).
    let images = benchmark_suite(4, 96, 64, 7);

    // 3. Run the three-step methodology with small budgets.
    let accel = SobelEd::new();
    let result = run_pipeline(&accel, &lib, &images, &PipelineOptions::quick())?;

    let (full, reduced, pseudo, final_n) = result.space_sizes_log10();
    println!("design space: 10^{full:.1} -> 10^{reduced:.1} after pre-processing");
    println!(
        "model fidelity (random forest): SSIM {:.0}% / area {:.0}% on held-out configs",
        result.fidelity.qor_test * 100.0,
        result.fidelity.hw_test * 100.0
    );
    println!("pseudo-Pareto set: {pseudo} configurations, final front: {final_n}");
    println!("\n  SSIM    area(um2)  energy(fJ)");
    for m in &result.final_front {
        println!("  {:.4}  {:9.1}  {:9.1}", m.ssim, m.area, m.energy);
    }
    Ok(())
}
