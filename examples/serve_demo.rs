//! DSE-as-a-service demo: starts the `autoax-serve` engine on loopback,
//! fires three concurrent jobs at it — two byte-identical, one with a
//! different seed — and shows the service machinery at work: the
//! identical pair collapses onto one pipeline execution (single-flight),
//! the distinct job runs on its own, and a repeat submission afterwards
//! is answered straight from the sharded result store.
//!
//! ```sh
//! cargo run --release --example serve_demo
//! cargo run --release --example serve_demo -- --cache-dir .axcache   # warm repeats
//! ```
//!
//! The digest lines are byte-identity fingerprints: the two identical
//! submissions (and any later cached repeat) must print the same one.

use autoax_serve::client;
use autoax_serve::{Json, ServerConfig};
use std::time::Instant;

fn job_body(seed: u64) -> Json {
    autoax_serve::json::obj([
        ("workload", Json::Str("sobel".into())),
        ("library", Json::Str("tiny".into())),
        ("strategy", Json::Str("hill".into())),
        ("max_evals", Json::Num(300.0)),
        ("train_configs", Json::Num(16.0)),
        ("test_configs", Json::Num(10.0)),
        ("final_eval_cap", Json::Num(8.0)),
        ("seed", Json::Num(seed as f64)),
    ])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let cache_dir = args
        .iter()
        .position(|a| a == "--cache-dir")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| {
            std::env::temp_dir()
                .join(format!("autoax-serve-demo-{}", std::process::id()))
                .to_string_lossy()
                .into_owned()
        });

    let mut cfg = ServerConfig::on_loopback(&cache_dir);
    cfg.engine.global_jobs = 4;
    let server = autoax_serve::spawn(cfg)?;
    let addr = server.addr();
    println!("serving on http://{addr}  (cache: {cache_dir})");

    // Three tenants submit concurrently; alice and bob ask for the exact
    // same job, carol for a different seed.
    let t0 = Instant::now();
    let submissions = [("alice", 42u64), ("bob", 42), ("carol", 7)];
    let handles: Vec<_> = submissions
        .map(|(tenant, seed)| {
            std::thread::spawn(move || (tenant, client::submit_job(addr, tenant, &job_body(seed))))
        })
        .into_iter()
        .collect();
    for h in handles {
        let (tenant, resp) = h.join().expect("client thread");
        let resp = resp?;
        println!(
            "{tenant:>6}: {} served={} members={} digest={}",
            resp.status,
            resp.served().unwrap_or("?"),
            resp.event("accepted")
                .and_then(|e| e.get("members"))
                .and_then(Json::as_usize)
                .unwrap_or(0),
            resp.front_digest().unwrap_or("?"),
        );
    }
    println!("3 submissions resolved in {:.1?}", t0.elapsed());

    // Alice asks again: same bytes, no pipeline run, answered from the
    // store (its in-memory LRU tier on a same-process repeat).
    let t1 = Instant::now();
    let repeat = client::submit_job(addr, "alice", &job_body(42))?;
    println!(
        "repeat: {} served={} digest={} in {:.1?}",
        repeat.status,
        repeat.served().unwrap_or("?"),
        repeat.front_digest().unwrap_or("?"),
        t1.elapsed()
    );

    let stats = client::request(addr, "GET", "/stats", &[], None)?;
    println!("stats:  {}", stats.lines[0]);

    let executions = server.engine().executions();
    server.stop();
    println!("server stopped; pipeline executions: {executions} (for 4 submissions)");
    if executions > 2 {
        return Err(format!("expected at most 2 executions, saw {executions}").into());
    }
    Ok(())
}
