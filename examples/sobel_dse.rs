//! The Sobel case study (paper Section 4.1) at a configurable scale:
//! library pre-processing with PMF profiling, model construction with a
//! fidelity report, Algorithm 1 versus random sampling, and the final
//! really-evaluated Pareto front.
//!
//! ```sh
//! cargo run --release --example sobel_dse                      # default scale
//! cargo run --release --example sobel_dse -- quick             # smoke test scale
//! cargo run --release --example sobel_dse -- --strategy nsga2  # swap the DSE algorithm
//! ```
//!
//! Pass `--cache-dir <path>` to persist the characterized library: the
//! most expensive step of a repeat run is then a checksummed load.

use autoax::evaluate::Evaluator;
use autoax::model::{fidelity_report, fit_models, naive_models, EvaluatedSet};
use autoax::preprocess::{preprocess, PreprocessOptions};
use autoax::search::{random_sampling, run_search, SearchAlgo, SearchOptions};
use autoax::Configuration;
use autoax_accel::sobel::SobelEd;
use autoax_accel::Accelerator;
use autoax_circuit::charlib::{ClassCounts, LibraryConfig};
use autoax_image::synthetic::benchmark_suite;
use autoax_ml::EngineKind;
use autoax_store::{load_or_build_library, parse_cache_flags};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "quick");
    let (cache_dir, cache_mode) = parse_cache_flags(&args);
    let strategy = SearchAlgo::from_args(&args).unwrap_or(SearchAlgo::Hill);
    let (counts, n_images, train_n, evals) = if quick {
        (ClassCounts::tiny(), 2, 60, 3000)
    } else {
        (ClassCounts::default_scale(), 8, 300, 50_000)
    };

    println!("== building library ==");
    let lib_out = load_or_build_library(
        &LibraryConfig {
            counts,
            ..LibraryConfig::default()
        },
        cache_dir.as_deref(),
        cache_mode,
    );
    let lib = lib_out.lib;
    println!(
        "library: {} circuits{}",
        lib.total_size(),
        if lib_out.cache_hit {
            " (warm-started from cache)"
        } else {
            ""
        }
    );

    let accel = SobelEd::new();
    let images = benchmark_suite(n_images, 192, 128, 7);

    println!("== step 1: library pre-processing ==");
    let pre = preprocess(&accel, &lib, &images, &PreprocessOptions::default()).expect("preprocess");
    for (slot, choices) in accel.slots().iter().zip(pre.space.slots().iter()) {
        println!(
            "  |RL_{}| = {:3}   (diagonal PMF mass: {:.2})",
            slot.name,
            choices.members.len(),
            pre.pmfs[accel
                .slots()
                .iter()
                .position(|s| s.name == slot.name)
                .unwrap()]
            .diagonal_mass(32)
        );
    }
    println!(
        "  space: 10^{:.2} -> 10^{:.2}",
        pre.full_log10_size,
        pre.space.log10_size()
    );

    println!("== step 2: model construction ==");
    let evaluator = Evaluator::new(&accel, &lib, &pre.space, &images);
    let train = EvaluatedSet::generate(&evaluator, &pre.space, train_n, 1);
    let test = EvaluatedSet::generate(&evaluator, &pre.space, train_n / 2, 2);
    let models = fit_models(EngineKind::RandomForest, &pre.space, &lib, &train, 42)?;
    let rep = fidelity_report(&models, &pre.space, &lib, &train, &test)?;
    let naive = naive_models(&pre.space);
    let nrep = fidelity_report(&naive, &pre.space, &lib, &train, &test)?;
    println!(
        "  random forest: SSIM {:.0}%/{:.0}%  area {:.0}%/{:.0}%  (train/test)",
        rep.qor_train * 100.0,
        rep.qor_test * 100.0,
        rep.hw_train * 100.0,
        rep.hw_test * 100.0
    );
    println!(
        "  naive models:  SSIM   — /{:.0}%  area   — /{:.0}%",
        nrep.qor_test * 100.0,
        nrep.hw_test * 100.0
    );

    println!("== step 3: model-based DSE ({strategy} strategy) ==");
    let estimator = autoax::model::ModelEstimator::new(&models, &pre.space, &lib);
    let opts = SearchOptions {
        strategy,
        max_evals: evals,
        stagnation_limit: 50,
        seed: 3,
        ..SearchOptions::default()
    };
    let hill = run_search(&pre.space, &estimator, &opts);
    let rs = random_sampling(&pre.space, &estimator, &opts);
    println!(
        "  {strategy}: {} pseudo-Pareto members; random sampling: {}",
        hill.len(),
        rs.len()
    );

    println!("== final real evaluation of the pseudo-Pareto set ==");
    let sorted: Vec<Configuration> = hill.into_sorted().into_iter().map(|(_, c)| c).collect();
    // an even spread across the estimated front, cheap end to expensive
    let n = sorted.len();
    let take = 24.min(n);
    let members: Vec<Configuration> = (0..take)
        .map(|i| sorted[i * (n - 1) / (take - 1).max(1)].clone())
        .collect();
    let evals = evaluator.evaluate_batch(&members);
    println!("  SSIM    area(um2)");
    for r in &evals {
        println!("  {:.4}  {:9.1}", r.qor, r.hw.area);
    }
    Ok(())
}
