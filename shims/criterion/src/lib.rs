//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! bench harness.
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset of the criterion 0.5 API used by the workspace's benches:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::sample_size`] / [`BenchmarkGroup::throughput`] /
//! [`BenchmarkGroup::finish`], [`Bencher::iter`], [`Throughput`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Statistics are deliberately simple — median of wall-clock samples with
//! min/max — but the measurement loop shape (warm-up, then timed batches)
//! matches the real harness closely enough for the reproduction's
//! order-of-magnitude speed claims (estimate vs. real analysis).

use std::time::{Duration, Instant};

/// Measurement driver handed to each `bench_function` closure.
pub struct Bencher {
    /// Per-sample wall-clock durations and iteration counts recorded by
    /// [`Bencher::iter`].
    samples: Vec<(Duration, u64)>,
    sample_count: usize,
}

impl Bencher {
    /// Times `routine`, running warm-up batches first and then
    /// `sample_count` timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until ~20 ms have elapsed to stabilize caches and
        // estimate a batch size that keeps each sample above timer noise.
        let warmup_budget = Duration::from_millis(20);
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < warmup_budget {
            std::hint::black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_nanos().max(1) / warmup_iters.max(1) as u128;
        // Aim for >= 1 ms per sample, capped to keep total time bounded.
        let batch = ((1_000_000 / per_iter.max(1)) as u64).clamp(1, 1_000_000);

        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples.push((start.elapsed(), batch));
        }
    }
}

/// Throughput annotation for a benchmark group (elements or bytes
/// processed per iteration).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of elements processed by one iteration.
    Elements(u64),
    /// Number of bytes processed by one iteration.
    Bytes(u64),
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares how much work one iteration performs, enabling
    /// elements/second reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_size,
        };
        f(&mut bencher);
        report(&self.name, id, &bencher.samples, self.throughput);
        self
    }

    /// Ends the group (kept for API parity; reporting is per-function).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("standalone").bench_function(id, f);
        self
    }
}

fn report(group: &str, id: &str, samples: &[(Duration, u64)], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples");
        return;
    }
    let mut per_iter: Vec<f64> = samples
        .iter()
        .map(|(d, n)| d.as_nanos() as f64 / *n as f64)
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = per_iter[per_iter.len() / 2];
    let lo = per_iter[0];
    let hi = per_iter[per_iter.len() - 1];
    let extra = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.3e} elem/s)", n as f64 * 1e9 / median)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.3e} B/s)", n as f64 * 1e9 / median)
        }
        None => String::new(),
    };
    println!(
        "{group}/{id}: median {}  [min {}, max {}]{extra}",
        fmt_ns(median),
        fmt_ns(lo),
        fmt_ns(hi)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs each group, mirroring criterion's
/// macro (bench targets set `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; ignore them.
            $( $group(); )+
        }
    };
}

/// Re-export matching `criterion::black_box` (deprecated upstream in favour
/// of `std::hint::black_box`, but still referenced by some benches).
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(3).throughput(Throughput::Elements(1));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn fmt_ns_scales() {
        assert!(fmt_ns(10.0).ends_with("ns"));
        assert!(fmt_ns(10_000.0).ends_with("µs"));
        assert!(fmt_ns(10_000_000.0).ends_with("ms"));
        assert!(fmt_ns(10_000_000_000.0).ends_with(" s"));
    }
}
