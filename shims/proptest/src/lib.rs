//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset of the proptest 1.x API the workspace's property tests use:
//! the [`Strategy`] trait with [`Strategy::prop_map`] and
//! [`Strategy::boxed`], [`Just`], [`any`], integer/float range strategies,
//! tuple strategies, [`collection::vec`], the [`prop_oneof!`] union macro
//! and the [`proptest!`] test-defining macro with
//! `#![proptest_config(ProptestConfig::with_cases(n))]` support.
//!
//! Differences from the real crate, by design:
//!
//! * **no shrinking** — a failing case panics with the usual assert
//!   message; cases are generated from a seed derived deterministically
//!   from the test name and case index, so failures reproduce exactly;
//! * `prop_assert!`/`prop_assert_eq!` panic immediately instead of
//!   returning `TestCaseError`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Adapter created by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut StdRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased strategy, as returned by [`Strategy::boxed`].
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice between boxed strategies (built by [`prop_oneof!`]).
pub struct Union<V> {
    variants: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over the given variants (must be non-empty).
    pub fn new(variants: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
        Union { variants }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        let i = rng.gen_range(0..self.variants.len());
        self.variants[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical "any value" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value of the type.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// Strategy over the full value range of `T` (see [`any`]).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Sizes accepted by [`vec()`]: a fixed length or a half-open range.
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for vectors of values from an element strategy.
    pub struct VecStrategy<S, R> {
        elem: S,
        size: R,
    }

    impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Vector of `size` elements drawn from `elem`.
    pub fn vec<S: Strategy, R: IntoSizeRange>(elem: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { elem, size }
    }
}

/// The glob-import surface used by tests (`use proptest::prelude::*`).
pub mod prelude {
    /// Module alias so `prop::collection::vec(...)` resolves, as with the
    /// real crate's prelude.
    pub use crate as prop;
    pub use crate::{any, collection, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[doc(hidden)]
pub fn __test_rng(test_name: &str, case: u64) -> StdRng {
    // FNV-1a over the test name, mixed with the case index, so every test
    // gets an independent deterministic stream.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0100_0000_01b3_u128 as u64);
    }
    StdRng::seed_from_u64(h.wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Defines property tests. Mirrors proptest's macro: an optional
/// `#![proptest_config(...)]` header followed by `#[test] fn`s whose
/// parameters are drawn from strategies (`name in strategy`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::__test_rng(stringify!($name), __case as u64);
                    $(
                        let $pat = $crate::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $($crate::Strategy::boxed($s)),+ ])
    };
}

/// Asserts a condition inside a property (panics on failure; no
/// shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Kind {
        A,
        B(u32),
    }

    fn kind_strategy() -> impl Strategy<Value = Kind> {
        prop_oneof![Just(Kind::A), (1u32..5).prop_map(Kind::B)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..9, f in 0.25f64..0.5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.25..0.5).contains(&f));
        }

        #[test]
        fn tuples_and_maps_compose(pair in (1u32..4, 1u32..4).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..=9).contains(&pair));
        }

        #[test]
        fn oneof_covers_variants(k in kind_strategy(), seed in any::<u64>()) {
            let _ = seed;
            match k {
                Kind::A => {}
                Kind::B(v) => prop_assert!((1..5).contains(&v)),
            }
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0.0f64..1.0, 1..7)) {
            prop_assert!(!v.is_empty() && v.len() < 7);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn same_test_name_reproduces_stream() {
        use crate::Strategy;
        let s = 0u64..u64::MAX;
        let a = s.generate(&mut crate::__test_rng("t", 0));
        let b = s.generate(&mut crate::__test_rng("t", 0));
        assert_eq!(a, b);
        let c = s.generate(&mut crate::__test_rng("t", 1));
        assert_ne!(a, c);
    }
}
