//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no crates.io access, so
//! this shim implements exactly the subset of the rand 0.8 API that the
//! workspace uses: [`rngs::StdRng`] (seedable, deterministic), the
//! [`Rng`]/[`SeedableRng`]/[`RngCore`] traits, `gen::<T>()` for the
//! primitive types, and `gen_range` over half-open and inclusive integer
//! ranges.
//!
//! The generator is **not** the ChaCha12 core of the real `StdRng` — it is
//! xoshiro256++ seeded through splitmix64 (the reference construction from
//! Blackman & Vigna). It is deterministic for a given seed, which is the
//! property the reproduction relies on; no cryptographic claims are made.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniformly distributed
/// 64/32-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their full value range by
/// [`Rng::gen`] (the `Standard` distribution of the real crate; floats
/// sample the half-open unit interval `[0, 1)`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if the range is
    /// empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Lemire-style rejection sampling for an unbiased draw.
                self.start + (uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Uniform draw from `[0, bound)` without modulo bias.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range; panics on an empty range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (xoshiro256++; see the crate docs
    /// for the difference from the real `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed through splitmix64, per Vigna's guidance.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.gen::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| b.gen::<u64>()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut r = StdRng::seed_from_u64(4);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v = r.gen_range(0..7usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..100 {
            let v = r.gen_range(5..=6u32);
            assert!(v == 5 || v == 6);
        }
    }

    #[test]
    fn float_ranges() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let v = r.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&v));
        }
    }
}
