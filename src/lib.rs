//! Umbrella crate for the autoAx (DAC 2019) reproduction workspace.
//!
//! This package exists so that the repository-level integration tests
//! (`tests/`) and runnable walkthroughs (`examples/`) have a Cargo home;
//! the actual functionality lives in the member crates, re-exported here
//! for convenience:
//!
//! * [`autoax`] — the three-step methodology (pre-processing, model
//!   construction, model-based DSE) and the pipeline driver;
//! * [`autoax_circuit`] — netlists, simulation, synthesis-lite and the
//!   generated approximate-component library;
//! * [`autoax_ml`] — from-scratch regression engines and fidelity;
//! * [`autoax_image`] — images, synthetic benchmark suite, SSIM/PSNR;
//! * [`autoax_accel`] — the three benchmark accelerators;
//! * [`autoax_store`] — versioned binary codec and the content-addressed
//!   cache behind library/pipeline warm starts.
//!
//! See `docs/ARCHITECTURE.md` for how the paper's three-step methodology
//! maps onto the crates and how data flows between them.

pub use autoax;
pub use autoax_accel;
pub use autoax_circuit;
pub use autoax_image;
pub use autoax_ml;
pub use autoax_store;
