//! Property-based tests (proptest) for the core invariants that hold
//! across crates:
//!
//! * every approximate-circuit family: netlist simulation ≡ functional
//!   model; synthesis-lite preserves the function;
//! * compiled ops (LUT or functional) ≡ the library entry they compile;
//! * characterization invariants (WCE ≥ MAE, WMED ≤ WCE);
//! * Pareto front invariants under arbitrary insertion streams;
//! * SSIM bounds and identity.

use autoax::config::{ConfigSpace, Configuration, SlotChoices, SlotMember};
use autoax::model::FittedModels;
use autoax::pareto::{ParetoFront, TradeoffPoint};
use autoax::search::Estimator;
use autoax_accel::accelerator::CompiledOp;
use autoax_accel::Pmf;
use autoax_circuit::approx::adders::AdderKind;
use autoax_circuit::approx::muls::MulKind;
use autoax_circuit::approx::subs::SubKind;
use autoax_circuit::approx::Behavior;
use autoax_circuit::charlib::{build_class, ComponentLibrary, LibraryConfig};
use autoax_circuit::sim::eval_binop;
use autoax_circuit::synth::optimize;
use autoax_circuit::OpSignature;
use autoax_ml::{EngineKind, Matrix};
use proptest::prelude::*;
use rand::SeedableRng;
use std::sync::OnceLock;

/// Strategy producing arbitrary 8-bit adder variants.
fn adder_kind_strategy() -> impl Strategy<Value = AdderKind> {
    prop_oneof![
        Just(AdderKind::Exact),
        (1u32..8).prop_map(|k| AdderKind::TruncZero { k }),
        (1u32..8).prop_map(|k| AdderKind::TruncPass { k }),
        (1u32..8).prop_map(|k| AdderKind::Loa { k }),
        (1u32..8).prop_map(|k| AdderKind::XorLower { k }),
        (1u32..8).prop_map(|r| AdderKind::Aca { r }),
        (1u32..4, 1u32..4).prop_map(|(r, p)| AdderKind::Gear { r, p }),
    ]
}

/// Strategy producing arbitrary 8×8 multiplier variants.
fn mul_kind_strategy() -> impl Strategy<Value = MulKind> {
    prop_oneof![
        Just(MulKind::Exact),
        (0u32..14, 0u32..8).prop_map(|(vbl, hbl)| MulKind::Bam { vbl, hbl }),
        (1u32..8, any::<bool>()).prop_map(|(k, comp)| MulKind::Trunc { k, comp }),
        (0u16..256).prop_map(|row_mask| MulKind::PerfRows { row_mask }),
        any::<u16>().prop_map(|leaf_mask| MulKind::Udm { leaf_mask }),
    ]
}

/// Strategy producing arbitrary 10-bit subtractor variants.
fn sub_kind_strategy() -> impl Strategy<Value = SubKind> {
    prop_oneof![
        Just(SubKind::Exact),
        (1u32..10).prop_map(|k| SubKind::TruncZero { k }),
        (1u32..10).prop_map(|k| SubKind::TruncPass { k }),
        (1u32..10).prop_map(|k| SubKind::XorLower { k }),
    ]
}

/// Lazily fitted model pairs for every Table 3 engine over a tiny
/// three-slot adder space, shared across property cases (one fit per
/// engine per test binary).
#[allow(clippy::type_complexity)]
static ENGINE_ZOO: OnceLock<(
    ConfigSpace,
    ComponentLibrary,
    Vec<(EngineKind, FittedModels)>,
)> = OnceLock::new();

fn fitted_engine_zoo() -> (
    &'static ConfigSpace,
    &'static ComponentLibrary,
    impl Iterator<Item = (EngineKind, &'static FittedModels)>,
) {
    let (space, lib, fitted) = ENGINE_ZOO.get_or_init(|| {
        let cfg = LibraryConfig::tiny();
        let entries = build_class(OpSignature::ADD8, 10, &cfg, 11);
        let mut lib = ComponentLibrary::default();
        lib.insert_class(OpSignature::ADD8, entries);
        let space = ConfigSpace::new(
            (0..3)
                .map(|i| SlotChoices {
                    name: format!("s{i}"),
                    signature: OpSignature::ADD8,
                    members: lib
                        .class(OpSignature::ADD8)
                        .iter()
                        .map(|e| SlotMember {
                            id: e.id,
                            wmed: e.err.mae,
                        })
                        .collect(),
                })
                .collect(),
        );
        // Distinct random training configurations with synthetic nonlinear
        // targets — enough structure for every engine to fit something.
        let mut rng = rand::rngs::StdRng::seed_from_u64(2019);
        let mut train: Vec<Configuration> = (0..120).map(|_| space.random(&mut rng)).collect();
        train.sort();
        train.dedup();
        let qrows: Vec<Vec<f64>> = train
            .iter()
            .map(|c| autoax::model::qor_features(&space, c))
            .collect();
        let hrows: Vec<Vec<f64>> = train
            .iter()
            .map(|c| autoax::model::hw_features(&space, &lib, c))
            .collect();
        let yq: Vec<f64> = qrows
            .iter()
            .map(|r| 1.0 - r.iter().sum::<f64>() / 50.0 + (r[0] * 0.3).sin() * 0.1)
            .collect();
        let yh: Vec<f64> = hrows
            .iter()
            .map(|r| r.iter().step_by(3).sum::<f64>() * (1.0 + 0.01 * (r[0] * 0.2).cos()))
            .collect();
        let qx = Matrix::from_rows(&qrows);
        let hx = Matrix::from_rows(&hrows);
        let fitted: Vec<(EngineKind, FittedModels)> = EngineKind::ALL
            .iter()
            .map(|&kind| {
                let mut qor = kind.make(5);
                qor.fit(&qx, &yq)
                    .unwrap_or_else(|e| panic!("{kind} qor: {e}"));
                let mut hw = kind.make(6);
                hw.fit(&hx, &yh)
                    .unwrap_or_else(|e| panic!("{kind} hw: {e}"));
                (kind, FittedModels { qor, hw })
            })
            .collect();
        (space, lib, fitted)
    });
    (space, lib, fitted.iter().map(|(k, m)| (*k, m)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn adder_netlist_matches_functional(kind in adder_kind_strategy(), seed in any::<u64>()) {
        let b = Behavior::Adder { w: 8, kind };
        let net = b.build_netlist();
        for (x, y) in autoax_circuit::util::stimulus_pairs(8, 8, 64, seed) {
            prop_assert_eq!(eval_binop(&net, 8, 8, x, y), b.eval(x, y));
        }
    }

    #[test]
    fn multiplier_netlist_matches_functional(kind in mul_kind_strategy(), seed in any::<u64>()) {
        let b = Behavior::Multiplier { wa: 8, wb: 8, kind };
        let net = b.build_netlist();
        for (x, y) in autoax_circuit::util::stimulus_pairs(8, 8, 48, seed) {
            prop_assert_eq!(eval_binop(&net, 8, 8, x, y), b.eval(x, y));
        }
    }

    #[test]
    fn subtractor_netlist_matches_functional(kind in sub_kind_strategy(), seed in any::<u64>()) {
        let b = Behavior::Subtractor { w: 10, kind };
        let net = b.build_netlist();
        for (x, y) in autoax_circuit::util::stimulus_pairs(10, 10, 48, seed) {
            prop_assert_eq!(eval_binop(&net, 10, 10, x, y), b.eval(x, y));
        }
    }

    #[test]
    fn synthesis_preserves_approximate_circuit_function(
        kind in mul_kind_strategy(),
        seed in any::<u64>()
    ) {
        let b = Behavior::Multiplier { wa: 8, wb: 8, kind };
        let net = b.build_netlist();
        let opt = optimize(&net);
        for (x, y) in autoax_circuit::util::stimulus_pairs(8, 8, 32, seed) {
            prop_assert_eq!(eval_binop(&opt, 8, 8, x, y), b.eval(x, y));
        }
        // optimization never increases cell count
        prop_assert!(opt.cell_count() <= net.cell_count());
    }

    #[test]
    fn pareto_front_stays_minimal(points in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..80)) {
        let mut front = ParetoFront::new();
        for (q, c) in points {
            front.try_insert(TradeoffPoint::new(q, c), ());
        }
        let pts = front.points();
        for (i, a) in pts.iter().enumerate() {
            for (j, b) in pts.iter().enumerate() {
                if i != j {
                    prop_assert!(!a.dominates(b), "{:?} dominates {:?}", a, b);
                    prop_assert!(!(a.qor == b.qor && a.cost == b.cost), "duplicate point kept");
                }
            }
        }
    }

    #[test]
    fn wmed_never_exceeds_wce(support_seed in any::<u64>()) {
        let cfg = LibraryConfig::tiny();
        let entries = build_class(OpSignature::ADD8, 12, &cfg, 5);
        let mut pmf = Pmf::new();
        let mut st = support_seed;
        for _ in 0..200 {
            let r = autoax_circuit::util::splitmix64(&mut st);
            pmf.add((r & 0xFF) as u32, ((r >> 8) & 0xFF) as u32);
        }
        let support = pmf.top_mass(1.0);
        for e in &entries {
            let w = autoax::wmed::wmed_on_support(e, &support);
            prop_assert!(w <= e.err.wce as f64 + 1e-9, "{}: {} > {}", e.label, w, e.err.wce);
        }
    }

    #[test]
    fn compiled_ops_match_entries(seed in any::<u64>()) {
        let cfg = LibraryConfig::tiny();
        let entries = build_class(OpSignature::MUL8, 10, &cfg, 7);
        for e in &entries {
            let op = CompiledOp::compile(e);
            for (x, y) in autoax_circuit::util::stimulus_pairs(8, 8, 24, seed) {
                prop_assert_eq!(op.eval(x, y), e.eval(x, y), "{}", &e.label);
            }
        }
    }

    #[test]
    fn ssim_is_bounded_and_reflexive(seed in any::<u64>(), seed2 in any::<u64>()) {
        use autoax_image::ssim::ssim;
        use autoax_image::synthetic::{natural_proxy, value_noise};
        let a = natural_proxy(32, 24, seed);
        let b = value_noise(32, 24, seed2, 3);
        let s = ssim(&a, &b);
        prop_assert!(s <= 1.0 + 1e-12);
        prop_assert!(s >= -1.0 - 1e-12);
        prop_assert!((ssim(&a, &a) - 1.0).abs() < 1e-12);
        prop_assert!((ssim(&a, &b) - ssim(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn exact_circuits_match_native_arithmetic(seed in any::<u64>()) {
        // The exact (non-approximate) member of every operation class the
        // library builds must agree with native integer arithmetic, both as
        // a functional model and as a simulated netlist.
        use autoax_circuit::util::mask;
        use autoax_circuit::OpKind;
        for sig in OpSignature::PAPER_CLASSES {
            let b = Behavior::exact_for(sig);
            let net = b.build_netlist();
            let (wa, wb) = (sig.width_a as u32, sig.width_b as u32);
            for (x, y) in autoax_circuit::util::stimulus_pairs(wa, wb, 32, seed) {
                let native = match sig.kind {
                    OpKind::Add => x + y,
                    OpKind::Mul => x * y,
                    OpKind::Sub => {
                        (x.wrapping_sub(y)) & mask(sig.output_width() as u32)
                    }
                };
                prop_assert_eq!(b.eval(x, y), native, "{} functional ({x}, {y})", sig);
                prop_assert_eq!(
                    eval_binop(&net, wa, wb, x, y),
                    native,
                    "{} netlist ({x}, {y})",
                    sig
                );
            }
        }
    }

    #[test]
    fn exact_adders_match_native_addition_at_every_width(
        w in 2u32..17,
        seed in any::<u64>()
    ) {
        // Beyond the six paper classes: the adder generator is width-
        // parametric, and its exact variant must be a true adder at any
        // width the library could be configured to build.
        let b = Behavior::Adder { w, kind: AdderKind::Exact };
        let net = b.build_netlist();
        for (x, y) in autoax_circuit::util::stimulus_pairs(w, w, 24, seed) {
            prop_assert_eq!(eval_binop(&net, w, w, x, y), x + y, "w={} ({x}, {y})", w);
        }
    }

    #[test]
    fn exact_multipliers_match_native_multiplication_at_every_width(
        wa in 2u32..9,
        wb in 2u32..9,
        seed in any::<u64>()
    ) {
        let b = Behavior::Multiplier { wa, wb, kind: MulKind::Exact };
        let net = b.build_netlist();
        for (x, y) in autoax_circuit::util::stimulus_pairs(wa, wb, 24, seed) {
            prop_assert_eq!(
                eval_binop(&net, wa, wb, x, y),
                x * y,
                "{}x{} ({x}, {y})",
                wa,
                wb
            );
        }
    }

    #[test]
    fn estimate_batch_equals_per_row_estimate_for_every_engine(seed in any::<u64>()) {
        // Property: for every learning engine of Table 3, the batched
        // estimation path (one feature matrix + one predict per model)
        // returns bitwise the same trade-off points as per-row estimation,
        // for arbitrary configuration batches. This is the invariant that
        // makes the island search's batch granularity semantically inert.
        let (space, lib, fitted) = fitted_engine_zoo();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 1 + (seed % 40) as usize;
        let configs: Vec<Configuration> = (0..n).map(|_| space.random(&mut rng)).collect();
        for (kind, models) in fitted {
            let batch = models.estimate_batch(space, lib, &configs);
            prop_assert_eq!(batch.len(), configs.len());
            for (c, (bq, bh)) in configs.iter().zip(batch.iter()) {
                let (q, h) = models.estimate(space, lib, c);
                prop_assert_eq!(q.to_bits(), bq.to_bits(), "{}: qor diverged", kind);
                prop_assert_eq!(h.to_bits(), bh.to_bits(), "{}: hw diverged", kind);
            }
            // and through the Estimator trait the search consumes
            let est = autoax::model::ModelEstimator::new(models, space, lib);
            let pts = est.estimate_batch(&configs);
            for (c, p) in configs.iter().zip(pts.iter()) {
                let one = est.estimate(c);
                prop_assert_eq!(one.qor.to_bits(), p.qor.to_bits(), "{}", kind);
                prop_assert_eq!(one.cost.to_bits(), p.cost.to_bits(), "{}", kind);
            }
        }
    }

    #[test]
    fn refinement_selection_is_permutation_invariant_and_exclusive(
        seed in any::<u64>(),
        rotate in 0usize..64,
        k in 1usize..12,
    ) {
        // Property: the refinement loop's acquisition function is a pure
        // function of the candidate *set* — input order and multiplicity
        // never change the picks — and it never selects a duplicate or a
        // genome that already carries a real label.
        let (space, lib, mut fitted) = fitted_engine_zoo();
        let (_, models) = fitted
            .find(|(kind, _)| *kind == EngineKind::RandomForest)
            .expect("forest in zoo");
        let est = autoax::model::ModelEstimator::new(models, space, lib);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 4 + (seed % 30) as usize;
        let pool: Vec<Configuration> = (0..n).map(|_| space.random(&mut rng)).collect();
        let exclude: std::collections::HashSet<Vec<u16>> = pool
            .iter()
            .take(n / 3)
            .map(|c| c.genes().to_vec())
            .collect();
        let picks = autoax::refine::select_informative(&est, &pool, &exclude, k, 0.5);
        // permuted + duplicated pool → identical picks
        let mut permuted = pool.clone();
        permuted.rotate_left(rotate % n);
        permuted.reverse();
        permuted.extend(pool.iter().cloned());
        let picks2 = autoax::refine::select_informative(&est, &permuted, &exclude, k, 0.5);
        prop_assert_eq!(&picks, &picks2, "selection depends on pool order");
        prop_assert!(picks.len() <= k);
        let mut seen = std::collections::HashSet::new();
        for c in &picks {
            prop_assert!(!exclude.contains(c.genes()), "picked an evaluated genome");
            prop_assert!(seen.insert(c.genes().to_vec()), "picked a duplicate");
        }
    }

    #[test]
    fn estimator_variance_matches_brute_force_over_forest_trees(seed in any::<u64>()) {
        // Property: the fused arena's per-tree variance kernel
        // (ModelEstimator::variance_slice) agrees bitwise with brute
        // force over the downcast forest's trees on live feature tables.
        use autoax_ml::forest::RandomForest;
        let (space, lib, mut fitted) = fitted_engine_zoo();
        let (_, models) = fitted
            .find(|(kind, _)| *kind == EngineKind::RandomForest)
            .expect("forest in zoo");
        let est = autoax::model::ModelEstimator::new(models, space, lib);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 1 + (seed % 70) as usize;
        let configs: Vec<Configuration> = (0..n).map(|_| space.random(&mut rng)).collect();
        let mut batch = autoax::search::ConfigBatch::with_capacity(space.slot_count(), n);
        for c in &configs {
            batch.push_genes(c.genes());
        }
        let (mut qvar, mut hvar) = (Vec::new(), Vec::new());
        est.variance_slice(batch.slice(0..n), &mut qvar, &mut hvar);
        prop_assert_eq!(qvar.len(), n);
        prop_assert_eq!(hvar.len(), n);
        let qf = models.qor.as_any().and_then(|a| a.downcast_ref::<RandomForest>()).unwrap();
        let hf = models.hw.as_any().and_then(|a| a.downcast_ref::<RandomForest>()).unwrap();
        for (i, c) in configs.iter().enumerate() {
            let qref = qf.predict_variance_row(&autoax::model::qor_features(space, c));
            let href = hf.predict_variance_row(&autoax::model::hw_features(space, lib, c));
            prop_assert_eq!(qvar[i].to_bits(), qref.to_bits(), "qor variance row {}", i);
            prop_assert_eq!(hvar[i].to_bits(), href.to_bits(), "hw variance row {}", i);
            prop_assert!(qvar[i] >= 0.0 && hvar[i] >= 0.0);
        }
    }

    #[test]
    fn characterization_invariants_hold(count in 6usize..14) {
        let cfg = LibraryConfig::tiny();
        let entries = build_class(OpSignature::SUB10, count, &cfg, count as u64);
        for e in &entries {
            prop_assert!(e.err.wce as f64 >= e.err.mae, "{}", &e.label);
            prop_assert!((e.err.er == 0.0) == (e.err.wce == 0), "{}", &e.label);
            prop_assert!(e.err.mse >= e.err.var_ed - 1e-9, "{}", &e.label);
            prop_assert!(e.hw.area > 0.0);
        }
    }
}

// ---------------------------------------------------------------------------
// MAC datapath of the NN workload (autoax-nn): exact circuits ≡ native
// integer arithmetic, at the paper's mul8/add16 widths and parametrically.
// ---------------------------------------------------------------------------

proptest! {
    /// The low-lane MAC composition — product through the multiplier
    /// class, accumulate through the 2w-bit adder class, carry beyond the
    /// lane via exact glue — equals the native `Σ x·w` for *every*
    /// multiplier width whose adder lane is a paper class (w = 4 → add8
    /// lanes, w = 8 → the mul8/add16 datapath) and the parametric widths
    /// in between.
    #[test]
    fn exact_mac_equals_native_at_every_width(
        w in 2u32..=8,
        stream in proptest::collection::vec((any::<u16>(), any::<u16>()), 1..40)
    ) {
        use autoax_circuit::util::mask;
        use autoax_circuit::OpKind;
        let mul = CompiledOp::Exact(OpSignature::new(OpKind::Mul, w as u8, w as u8));
        let add = CompiledOp::Exact(OpSignature::new(OpKind::Add, 2 * w as u8, 2 * w as u8));
        let op_mask = mask(w);
        let lane = mask(2 * w);
        let mut acc = 0u64;
        let mut native = 0u64;
        for &(a, b) in &stream {
            let x = a as u64 & op_mask;
            let y = b as u64 & op_mask;
            let p = mul.eval(x, y) & lane;
            let lo = acc & lane;
            let s = add.eval(lo, p) & mask(2 * w + 1);
            acc = (acc & !lane).wrapping_add(s);
            native += x * y;
        }
        prop_assert_eq!(acc, native, "w={}", w);
    }

    /// `autoax_nn::mac_step` — the slot-observing mul8/add16 MAC the
    /// quantized MLP runs on — folds to the native dot product under
    /// exact ops for arbitrary operand streams.
    #[test]
    fn nn_mac_step_matches_native_dot_product(
        stream in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..64)
    ) {
        use autoax_accel::accelerator::{NoRecord, OpSet, OpSlot};
        let slots = [
            OpSlot::new("mul", OpSignature::MUL8),
            OpSlot::new("acc", OpSignature::ADD16),
        ];
        let ops = OpSet::exact_slots(&slots);
        let mut acc = 0u64;
        for &(x, w) in &stream {
            acc = autoax_nn::mac_step(&ops, 0, 1, acc, x, w, &mut NoRecord);
        }
        let native: u64 = stream.iter().map(|&(x, w)| x as u64 * w as u64).sum();
        prop_assert_eq!(acc, native);
    }
}
