//! Integration tests of the cache-aware pipeline warm start: a warm run
//! with a populated cache must skip Steps 1–2 entirely and produce a
//! **byte-identical** `PipelineResult` to the cold run, and corrupt or
//! tampered cache files must fall back to recompute — never to a wrong
//! result.

use autoax::pipeline::{run_pipeline, PipelineOptions, PipelineResult};
use autoax::CacheMode;
use autoax_accel::sobel::SobelEd;
use autoax_circuit::charlib::{build_library, ComponentLibrary, LibraryConfig};
use autoax_image::GrayImage;
use autoax_store::cache::Store;
use std::path::PathBuf;

fn temp_cache_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "autoax-pipeline-cache-test-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn setup() -> (SobelEd, ComponentLibrary, Vec<GrayImage>) {
    (
        SobelEd::new(),
        build_library(&LibraryConfig::tiny()),
        autoax_image::synthetic::benchmark_suite(2, 48, 32, 5),
    )
}

/// Asserts two pipeline results are byte-identical in every
/// deterministic field (timings are wall-clock and excluded).
fn assert_results_byte_identical(cold: &PipelineResult, warm: &PipelineResult) {
    // fidelity report, bit for bit
    for (a, b) in [
        (cold.fidelity.qor_train, warm.fidelity.qor_train),
        (cold.fidelity.qor_test, warm.fidelity.qor_test),
        (cold.fidelity.hw_train, warm.fidelity.hw_train),
        (cold.fidelity.hw_test, warm.fidelity.hw_test),
    ] {
        assert_eq!(a.to_bits(), b.to_bits(), "fidelity diverged");
    }
    // preprocessed space: slot structure and WMED bits
    assert_eq!(
        cold.preprocessed.full_log10_size.to_bits(),
        warm.preprocessed.full_log10_size.to_bits()
    );
    assert_eq!(
        cold.preprocessed.space.slot_count(),
        warm.preprocessed.space.slot_count()
    );
    for (a, b) in cold
        .preprocessed
        .space
        .slots()
        .iter()
        .zip(warm.preprocessed.space.slots())
    {
        assert_eq!(a.name, b.name);
        assert_eq!(a.signature, b.signature);
        assert_eq!(a.members.len(), b.members.len());
        for (ma, mb) in a.members.iter().zip(&b.members) {
            assert_eq!(ma.id, mb.id);
            assert_eq!(ma.wmed.to_bits(), mb.wmed.to_bits());
        }
    }
    // profiled PMFs (lossless count tables)
    assert_eq!(cold.preprocessed.pmfs.len(), warm.preprocessed.pmfs.len());
    for (a, b) in cold.preprocessed.pmfs.iter().zip(&warm.preprocessed.pmfs) {
        assert_eq!(a.sorted_counts(), b.sorted_counts());
    }
    // pseudo-Pareto front: configurations and estimated objectives
    let cold_front = cold.pseudo_front.clone().into_sorted();
    let warm_front = warm.pseudo_front.clone().into_sorted();
    assert_eq!(cold_front.len(), warm_front.len(), "pseudo front size");
    for ((pa, ca), (pb, cb)) in cold_front.iter().zip(warm_front.iter()) {
        assert_eq!(ca, cb, "pseudo front configuration diverged");
        assert_eq!(pa.qor.to_bits(), pb.qor.to_bits());
        assert_eq!(pa.cost.to_bits(), pb.cost.to_bits());
    }
    // real evaluations
    assert_eq!(cold.evaluated.len(), warm.evaluated.len());
    for ((ca, ra), (cb, rb)) in cold.evaluated.iter().zip(&warm.evaluated) {
        assert_eq!(ca, cb);
        assert_eq!(ra.qor.to_bits(), rb.qor.to_bits());
        assert_eq!(ra.hw.area.to_bits(), rb.hw.area.to_bits());
        assert_eq!(ra.hw.energy.to_bits(), rb.hw.energy.to_bits());
    }
    // final front
    assert_eq!(cold.final_front.len(), warm.final_front.len());
    for (a, b) in cold.final_front.iter().zip(&warm.final_front) {
        assert_eq!(a.config, b.config);
        assert_eq!(a.qor.to_bits(), b.qor.to_bits());
        assert_eq!(a.area.to_bits(), b.area.to_bits());
        assert_eq!(a.energy.to_bits(), b.energy.to_bits());
    }
}

#[test]
fn warm_run_skips_steps_1_2_and_is_byte_identical() {
    let dir = temp_cache_dir("warm");
    let (accel, lib, images) = setup();
    let opts = PipelineOptions::quick().with_cache(&dir, CacheMode::ReadWrite);

    let cold = run_pipeline(&accel, &lib, &images, &opts).unwrap();
    assert_eq!(cold.timings.cache_hits, 0);
    assert_eq!(cold.timings.cache_misses, 1);
    assert!(cold.timings.step12_compute > std::time::Duration::ZERO);

    let warm = run_pipeline(&accel, &lib, &images, &opts).unwrap();
    assert_eq!(warm.timings.cache_hits, 1, "second run must warm-start");
    assert_eq!(warm.timings.cache_misses, 0);
    // Steps 1–2 skipped entirely: their stage timers never started.
    assert_eq!(warm.timings.profiling, std::time::Duration::ZERO);
    assert_eq!(warm.timings.preprocess, std::time::Duration::ZERO);
    assert_eq!(warm.timings.training_data, std::time::Duration::ZERO);
    assert_eq!(warm.timings.model_fit, std::time::Duration::ZERO);
    assert_eq!(warm.timings.step12_compute, std::time::Duration::ZERO);
    assert!(warm.timings.cache_load > std::time::Duration::ZERO);

    assert_results_byte_identical(&cold, &warm);
}

#[test]
fn corrupt_cache_entry_falls_back_to_recompute() {
    let dir = temp_cache_dir("corrupt");
    let (accel, lib, images) = setup();
    let opts = PipelineOptions::quick().with_cache(&dir, CacheMode::ReadWrite);

    let cold = run_pipeline(&accel, &lib, &images, &opts).unwrap();

    // flip one byte in the middle of the single cache entry
    let store = Store::new(&dir);
    let entries: Vec<PathBuf> = std::fs::read_dir(store.dir())
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "axbin"))
        .collect();
    assert_eq!(entries.len(), 1, "expected exactly one cache entry");
    let mut bytes = std::fs::read(&entries[0]).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&entries[0], &bytes).unwrap();

    let recovered = run_pipeline(&accel, &lib, &images, &opts).unwrap();
    assert_eq!(recovered.timings.cache_hits, 0, "corrupt entry must miss");
    assert_eq!(recovered.timings.cache_misses, 1);
    assert!(recovered.timings.step12_compute > std::time::Duration::ZERO);
    assert_results_byte_identical(&cold, &recovered);

    // read-write mode replaced the corrupt entry: next run hits again
    let warm = run_pipeline(&accel, &lib, &images, &opts).unwrap();
    assert_eq!(warm.timings.cache_hits, 1);
    assert_results_byte_identical(&cold, &warm);
}

#[test]
fn read_mode_never_writes_and_off_mode_never_reads() {
    let dir = temp_cache_dir("modes");
    let (accel, lib, images) = setup();

    // read mode on an empty cache: miss, and no entry is written
    let read_opts = PipelineOptions::quick().with_cache(&dir, CacheMode::Read);
    let r = run_pipeline(&accel, &lib, &images, &read_opts).unwrap();
    assert_eq!(r.timings.cache_misses, 1);
    assert!(
        !dir.exists() || std::fs::read_dir(&dir).unwrap().next().is_none(),
        "read mode must not write entries"
    );

    // populate, then verify off mode ignores the populated cache
    let rw_opts = PipelineOptions::quick().with_cache(&dir, CacheMode::ReadWrite);
    let _ = run_pipeline(&accel, &lib, &images, &rw_opts).unwrap();
    let off_opts = PipelineOptions::quick().with_cache(&dir, CacheMode::Off);
    let off = run_pipeline(&accel, &lib, &images, &off_opts).unwrap();
    assert_eq!(off.timings.cache_hits, 0);
    assert_eq!(off.timings.cache_misses, 0);
    assert!(off.timings.step12_compute > std::time::Duration::ZERO);
}

#[test]
fn different_search_budgets_share_one_step12_entry() {
    // The reuse the paper argues for: one characterized/modelled artifact
    // serves many search configurations.
    let dir = temp_cache_dir("budgets");
    let (accel, lib, images) = setup();
    let base = PipelineOptions::quick().with_cache(&dir, CacheMode::ReadWrite);
    let _ = run_pipeline(&accel, &lib, &images, &base).unwrap();

    let other_budget = PipelineOptions {
        search: autoax::SearchOptions {
            max_evals: base.search.max_evals / 2,
            ..base.search
        },
        final_eval_cap: 20,
        ..base.clone()
    };
    let warm = run_pipeline(&accel, &lib, &images, &other_budget).unwrap();
    assert_eq!(
        warm.timings.cache_hits, 1,
        "a different search budget must reuse the Step-1/2 entry"
    );
    assert!(!warm.final_front.is_empty());

    // A different search *strategy* reuses it too.
    let other_strategy = base.clone().with_strategy(autoax::SearchAlgo::Nsga2);
    let warm2 = run_pipeline(&accel, &lib, &images, &other_strategy).unwrap();
    assert_eq!(
        warm2.timings.cache_hits, 1,
        "a different search strategy must reuse the Step-1/2 entry"
    );
    assert_eq!(warm2.timings.search_strategy, "nsga2");
    assert!(!warm2.final_front.is_empty());
}

/// A quick refinement schedule for the cache tests (small budgets — the
/// cache semantics, not the fidelity gain, are under test here).
fn refine_opts(dir: &PathBuf) -> PipelineOptions {
    let mut opts = PipelineOptions::quick().with_cache(dir, CacheMode::ReadWrite);
    opts.search.refine = autoax::RefinementSchedule {
        epochs: 1,
        per_epoch: 8,
        novelty_weight: 0.5,
        replace_trees: 10,
    };
    opts
}

#[test]
fn refined_runs_warm_start_byte_identically() {
    let dir = temp_cache_dir("refined");
    let (accel, lib, images) = setup();
    let opts = refine_opts(&dir);

    // cold: the Step-1/2 entry and the refined-model entry both miss
    let cold = run_pipeline(&accel, &lib, &images, &opts).unwrap();
    assert_eq!(cold.timings.cache_hits, 0);
    assert_eq!(cold.timings.cache_misses, 2);
    let cold_rep = cold.refinement.expect("refinement ran");
    assert_eq!(cold_rep.epochs_run, 1);
    assert_eq!(cold_rep.real_evals, 8);

    // warm: both entries hit; not a single real evaluation is respent on
    // refinement and every deterministic field replays bit-identically
    let warm = run_pipeline(&accel, &lib, &images, &opts).unwrap();
    assert_eq!(warm.timings.cache_hits, 2);
    assert_eq!(warm.timings.cache_misses, 0);
    assert_eq!(warm.timings.training_data, std::time::Duration::ZERO);
    assert_results_byte_identical(&cold, &warm);
    assert_eq!(
        Some(cold_rep),
        warm.refinement,
        "refinement report diverged"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn refined_entry_misses_when_refinement_knobs_change() {
    let dir = temp_cache_dir("refined-knobs");
    let (accel, lib, images) = setup();
    let base = refine_opts(&dir);
    let _ = run_pipeline(&accel, &lib, &images, &base).unwrap();

    // every semantic refinement/search knob must miss the refined entry
    // while still reusing the Step-1/2 entry (1 hit + 1 miss)
    let variants: Vec<PipelineOptions> = vec![
        {
            let mut o = base.clone();
            o.search.refine.per_epoch = 9;
            o
        },
        {
            let mut o = base.clone();
            o.search.refine.epochs = 2;
            o
        },
        {
            let mut o = base.clone();
            o.search.refine.novelty_weight = 0.25;
            o
        },
        {
            let mut o = base.clone();
            o.search.refine.replace_trees = 5;
            o
        },
        {
            let mut o = base.clone();
            o.search.max_evals /= 2;
            o
        },
        {
            let mut o = base.clone();
            o.search.islands = 2;
            o
        },
    ];
    for (i, o) in variants.iter().enumerate() {
        let res = run_pipeline(&accel, &lib, &images, o).unwrap();
        assert_eq!(res.timings.cache_hits, 1, "variant {i}: step12 must hit");
        assert_eq!(
            res.timings.cache_misses, 1,
            "variant {i}: refined entry must miss"
        );
    }
    // a master-seed change misses both domains (the step12 key carries
    // the seed, and the refined key embeds the step12 key)
    let mut reseeded = base.clone();
    reseeded.seed = 43;
    let res = run_pipeline(&accel, &lib, &images, &reseeded).unwrap();
    assert_eq!(res.timings.cache_hits, 0);
    assert_eq!(res.timings.cache_misses, 2);

    // throughput knobs alias (pure-throughput contract): batch size and
    // threads reuse both entries
    let mut throughput = base.clone();
    throughput.search.batch_size = 7;
    throughput.search.threads = 3;
    let res = run_pipeline(&accel, &lib, &images, &throughput).unwrap();
    assert_eq!(res.timings.cache_hits, 2, "throughput knobs must not miss");
    assert_eq!(res.timings.cache_misses, 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn refined_cache_key_is_inert_for_plain_runs() {
    // with refinement off, the refined domain must never be consulted:
    // the exact hit/miss ledger of the plain tests above depends on it
    let dir = temp_cache_dir("refined-inert");
    let (accel, lib, images) = setup();
    let opts = PipelineOptions::quick().with_cache(&dir, CacheMode::ReadWrite);
    let cold = run_pipeline(&accel, &lib, &images, &opts).unwrap();
    assert!(cold.refinement.is_none());
    assert_eq!(cold.timings.cache_misses, 1, "plain cold run: step12 only");
    let warm = run_pipeline(&accel, &lib, &images, &opts).unwrap();
    assert_eq!(warm.timings.cache_hits, 1, "plain warm run: step12 only");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn nn_workload_warm_start_is_byte_identical_too() {
    // the cache layer is domain-generic: the NN workload's Steps 1–2
    // (operand profiling over the MAC slots, accuracy/area models) must
    // warm-start byte-identically through the same store
    let dir = temp_cache_dir("nn-warm");
    let lib = build_library(&LibraryConfig::tiny());
    let (accel, samples) = autoax_nn::NnScenario::tiny().build();
    let opts = PipelineOptions::quick().with_cache(&dir, CacheMode::ReadWrite);

    let cold = run_pipeline(&accel, &lib, &samples, &opts).unwrap();
    assert_eq!(cold.timings.cache_hits, 0);
    assert_eq!(cold.timings.cache_misses, 1);

    let warm = run_pipeline(&accel, &lib, &samples, &opts).unwrap();
    assert_eq!(warm.timings.cache_hits, 1);
    assert_eq!(warm.timings.cache_misses, 0);
    assert_eq!(warm.timings.profiling, std::time::Duration::ZERO);
    assert_results_byte_identical(&cold, &warm);

    // a different network (one weight flipped) must miss: the workload
    // identity digest covers the weights
    let mut other_mlp = accel.mlp().clone();
    other_mlp.layers[0].weights[0] ^= 1;
    let other = autoax_nn::NnAccelerator::new("Quantized MLP", other_mlp);
    let res = run_pipeline(&other, &lib, &samples, &opts).unwrap();
    assert_eq!(res.timings.cache_hits, 0, "weight flip must not alias");
    assert_eq!(res.timings.cache_misses, 1);

    let _ = std::fs::remove_dir_all(&dir);
}
