//! Cross-crate integration tests: the full methodology exercised end to
//! end on real (tiny-scale) substrates — library generation, profiling,
//! model fitting, Algorithm 1, real evaluation, final Pareto filtering.

use autoax::evaluate::Evaluator;
use autoax::model::{fidelity_report, fit_models, naive_models, EvaluatedSet};
use autoax::pipeline::{run_pipeline, PipelineOptions};
use autoax::preprocess::{preprocess, PreprocessOptions};
use autoax::search::uniform_selection;
use autoax_accel::gaussian_fixed::FixedGaussian;
use autoax_accel::gaussian_generic::GenericGaussian;
use autoax_accel::sobel::SobelEd;
use autoax_accel::Accelerator;
use autoax_circuit::charlib::{build_library, ComponentLibrary, LibraryConfig};
use autoax_image::synthetic::benchmark_suite;
use autoax_image::GrayImage;
use autoax_ml::EngineKind;

fn tiny_lib() -> ComponentLibrary {
    build_library(&LibraryConfig::tiny())
}

fn images() -> Vec<GrayImage> {
    benchmark_suite(2, 64, 48, 9)
}

#[test]
fn pipeline_smoke_quick_tiny() {
    // The fastest meaningful end-to-end run: quick budgets on the tiny
    // library must yield a non-empty final front and a sane fidelity
    // report (fidelity is a probability of order agreement, so in [0, 1]).
    let lib = tiny_lib();
    let imgs = images();
    let res = run_pipeline(&SobelEd::new(), &lib, &imgs, &PipelineOptions::quick())
        .expect("quick pipeline on tiny library");
    assert!(!res.final_front.is_empty(), "final Pareto front is empty");
    let f = &res.fidelity;
    for (name, v) in [
        ("qor_train", f.qor_train),
        ("qor_test", f.qor_test),
        ("hw_train", f.hw_train),
        ("hw_test", f.hw_test),
    ] {
        assert!(
            (0.0..=1.0).contains(&v),
            "fidelity {name} out of [0,1]: {v}"
        );
    }
}

#[test]
fn full_pipeline_on_all_three_accelerators() {
    let lib = tiny_lib();
    let imgs = images();
    let accels: Vec<Box<dyn Accelerator>> = vec![
        Box::new(SobelEd::new()),
        Box::new(FixedGaussian::new()),
        Box::new(GenericGaussian::with_sweep(2)),
    ];
    for accel in accels {
        let res = run_pipeline(accel.as_ref(), &lib, &imgs, &PipelineOptions::quick())
            .unwrap_or_else(|e| panic!("{}: {e}", accel.name()));
        // Table 5 shape: each stage shrinks the candidate set.
        let (full, reduced, pseudo, final_n) = res.space_sizes_log10();
        assert!(full > reduced, "{}", accel.name());
        assert!((pseudo as f64) < 10f64.powf(reduced), "{}", accel.name());
        assert!(final_n >= 1, "{}", accel.name());
        // The final front reaches SSIM 1.0 (the exact design is included).
        let best = res
            .final_front
            .iter()
            .map(|m| m.qor)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            (best - 1.0).abs() < 1e-9,
            "{}: best SSIM {best}",
            accel.name()
        );
        // Trade-off sanity: the cheapest front member costs less than the
        // most accurate one.
        let cheapest = res
            .final_front
            .iter()
            .map(|m| m.area)
            .fold(f64::INFINITY, f64::min);
        let exact_area = res
            .final_front
            .iter()
            .find(|m| (m.qor - 1.0).abs() < 1e-9)
            .map(|m| m.area)
            .unwrap();
        assert!(cheapest < exact_area, "{}", accel.name());
    }
}

#[test]
fn real_evaluation_orders_aggressiveness() {
    // More approximate circuits (higher WMED members) should cost less
    // area and lose SSIM versus the exact configuration.
    let lib = tiny_lib();
    let imgs = images();
    let accel = FixedGaussian::new();
    let pre = preprocess(&accel, &lib, &imgs, &PreprocessOptions::default()).expect("preprocess");
    let ev = Evaluator::new(&accel, &lib, &pre.space, &imgs);
    let exact = ev.evaluate(&pre.space.exact());
    assert!((exact.qor - 1.0).abs() < 1e-9);
    let worst = autoax::Configuration::from_genes(
        pre.space.sizes().iter().map(|&n| (n - 1) as u16).collect(),
    );
    let w = ev.evaluate(&worst);
    assert!(w.qor < exact.qor);
    assert!(w.hw.area < exact.hw.area);
    assert!(w.hw.energy < exact.hw.energy);
}

#[test]
fn model_estimates_rank_real_evaluations() {
    let lib = tiny_lib();
    let imgs = images();
    let accel = SobelEd::new();
    let pre = preprocess(&accel, &lib, &imgs, &PreprocessOptions::default()).expect("preprocess");
    let ev = Evaluator::new(&accel, &lib, &pre.space, &imgs);
    let train = EvaluatedSet::generate(&ev, &pre.space, 60, 1);
    let test = EvaluatedSet::generate(&ev, &pre.space, 30, 2);
    let models = fit_models(EngineKind::RandomForest, &pre.space, &lib, &train, 42).unwrap();
    let rep = fidelity_report(&models, &pre.space, &lib, &train, &test).unwrap();
    assert!(rep.qor_test > 0.6, "{rep:?}");
    assert!(rep.hw_test > 0.6, "{rep:?}");
    // naive models work but are not dramatically better (Table 3 shape is
    // asserted statistically in the bench binaries; here only sanity).
    let naive = naive_models(&pre.space);
    let nrep = fidelity_report(&naive, &pre.space, &lib, &train, &test).unwrap();
    assert!(nrep.qor_test > 0.5, "{nrep:?}");
}

#[test]
fn uniform_selection_spans_quality_range() {
    let lib = tiny_lib();
    let imgs = images();
    let accel = SobelEd::new();
    let pre = preprocess(&accel, &lib, &imgs, &PreprocessOptions::default()).expect("preprocess");
    let ev = Evaluator::new(&accel, &lib, &pre.space, &imgs);
    let configs = uniform_selection(&pre.space, 6);
    assert!(configs.len() >= 2);
    let evals = ev.evaluate_batch(&configs);
    let first = &evals[0];
    let last = evals.last().unwrap();
    // level 0 = all-exact-ish, last level = most approximate
    assert!(first.qor > last.qor);
    assert!(first.hw.area > last.hw.area);
}

#[test]
fn hardware_netlists_of_configurations_are_simulable() {
    // Compose HW netlists for random configurations of every accelerator
    // and check they synthesize to positive costs.
    let lib = tiny_lib();
    let imgs = images();
    let accels: Vec<Box<dyn Accelerator>> = vec![
        Box::new(SobelEd::new()),
        Box::new(FixedGaussian::new()),
        Box::new(GenericGaussian::with_sweep(2)),
    ];
    for accel in accels {
        let pre = preprocess(accel.as_ref(), &lib, &imgs, &PreprocessOptions::default())
            .expect("preprocess");
        let ev = Evaluator::new(accel.as_ref(), &lib, &pre.space, &imgs);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..3 {
            let c = pre.space.random(&mut rng);
            let hw = ev.evaluate_hw(&c);
            assert!(hw.area > 0.0, "{}", accel.name());
            assert!(hw.delay > 0.0, "{}", accel.name());
            assert!(hw.cells > 10, "{}", accel.name());
        }
    }
}

#[test]
fn pipeline_search_is_thread_and_batch_invariant() {
    // The island search must produce a byte-identical pseudo-Pareto set
    // (and therefore final front) for any worker-thread count and any
    // estimation batch granularity — those are throughput knobs only.
    let lib = tiny_lib();
    let imgs = images();
    let accel = SobelEd::new();
    let run = |threads: usize, batch: usize| {
        run_pipeline(
            &accel,
            &lib,
            &imgs,
            &PipelineOptions {
                search: autoax::SearchOptions {
                    threads,
                    batch_size: batch,
                    ..PipelineOptions::quick().search
                },
                ..PipelineOptions::quick()
            },
        )
        .expect("pipeline run")
    };
    let reference = run(1, 1);
    assert!(reference.timings.search_evals_per_sec > 0.0);
    let ref_pseudo: Vec<(u64, u64, autoax::Configuration)> = reference
        .pseudo_front
        .iter()
        .map(|(p, c)| (p.qor.to_bits(), p.cost.to_bits(), c.clone()))
        .collect();
    for (threads, batch) in [(2, 17), (8, 256)] {
        let other = run(threads, batch);
        let other_pseudo: Vec<(u64, u64, autoax::Configuration)> = other
            .pseudo_front
            .iter()
            .map(|(p, c)| (p.qor.to_bits(), p.cost.to_bits(), c.clone()))
            .collect();
        assert_eq!(
            ref_pseudo, other_pseudo,
            "pseudo front diverged at threads={threads} batch={batch}"
        );
        assert_eq!(reference.final_front.len(), other.final_front.len());
        for (a, b) in reference.final_front.iter().zip(other.final_front.iter()) {
            assert_eq!(a.qor, b.qor);
            assert_eq!(a.area, b.area);
            assert_eq!(a.config, b.config);
        }
    }
}

#[test]
fn pipeline_is_deterministic() {
    let lib = tiny_lib();
    let imgs = images();
    let accel = SobelEd::new();
    let r1 = run_pipeline(&accel, &lib, &imgs, &PipelineOptions::quick()).unwrap();
    let r2 = run_pipeline(&accel, &lib, &imgs, &PipelineOptions::quick()).unwrap();
    assert_eq!(r1.final_front.len(), r2.final_front.len());
    for (a, b) in r1.final_front.iter().zip(r2.final_front.iter()) {
        assert_eq!(a.qor, b.qor);
        assert_eq!(a.area, b.area);
        assert_eq!(a.config, b.config);
    }
}
