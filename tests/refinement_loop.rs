//! Integration contract of the active-learning refinement loop (the
//! paper's Step 2/3 closure):
//!
//! * **off means off** — [`autoax::RefinementSchedule::off`] reproduces
//!   the pinned quickstart front digest bit for bit;
//! * **throughput invariance** — a refined run is byte-identical across
//!   worker-thread counts and batch sizes (the same contract the plain
//!   search layer pins);
//! * **the gain is real** — at an equal total real-evaluation budget,
//!   the refined models beat an unrefined baseline on held-out fidelity,
//!   and the refined front's hypervolume does not regress.

use autoax::pipeline::{run_pipeline, PipelineOptions, PipelineResult};
use autoax::{RefinementSchedule, TradeoffPoint};
use autoax_accel::sobel::SobelEd;
use autoax_circuit::charlib::{build_library, ComponentLibrary, LibraryConfig};
use autoax_image::GrayImage;

/// Exactly the quickstart example's setup (the pinned-digest scenario).
fn quickstart_setup() -> (SobelEd, ComponentLibrary, Vec<GrayImage>) {
    (
        SobelEd::new(),
        build_library(&LibraryConfig::tiny()),
        autoax_image::synthetic::benchmark_suite(4, 96, 64, 7),
    )
}

/// A smaller setup for the repeated-run invariance matrix.
fn small_setup() -> (SobelEd, ComponentLibrary, Vec<GrayImage>) {
    (
        SobelEd::new(),
        build_library(&LibraryConfig::tiny()),
        autoax_image::synthetic::benchmark_suite(2, 48, 32, 5),
    )
}

/// Bit-pattern of each pseudo-front member: (qor, cost, genome).
type FrontBits = Vec<(u64, u64, Vec<u16>)>;
/// Bit-pattern of a refinement report: (qor-after, hw-after, evals, epochs).
type ReportBits = Vec<(u64, u64, u64, u64)>;

/// Deterministic fingerprint of everything a refined run produces.
fn snapshot(res: &PipelineResult) -> (u64, FrontBits, ReportBits) {
    let front = res
        .pseudo_front
        .iter()
        .map(|(p, c)| (p.qor.to_bits(), p.cost.to_bits(), c.genes().to_vec()))
        .collect();
    let reports = res
        .refinement
        .iter()
        .map(|r| {
            (
                r.after.qor_test.to_bits(),
                r.after.hw_test.to_bits(),
                r.real_evals as u64,
                r.epochs_run as u64,
            )
        })
        .collect();
    (res.front_digest(), front, reports)
}

#[test]
fn off_schedule_reproduces_the_pinned_quickstart_digest() {
    let (accel, lib, images) = quickstart_setup();
    let mut opts = PipelineOptions::quick();
    opts.search.refine = RefinementSchedule::off();
    let res = run_pipeline(&accel, &lib, &images, &opts).expect("pipeline");
    assert!(res.refinement.is_none(), "off schedule must not refine");
    assert_eq!(res.pseudo_front.len(), 65, "pseudo-Pareto size drifted");
    assert_eq!(res.final_front.len(), 14, "final front size drifted");
    assert_eq!(
        res.front_digest(),
        0x252e_0c00_c843_33a4,
        "RefinementSchedule::off must leave the plain pipeline bit-identical \
         to the pre-refinement baseline"
    );
}

#[test]
fn pinned_quickstart_digest_is_stable_across_worker_pool_widths() {
    // The persistent worker pool, the fused/quantized forest kernels and
    // the batched Pareto insertion are all pure throughput machinery:
    // the pinned quickstart digest must not move at any pool width.
    // Widths are set through `SearchOptions::threads` (not the env var)
    // so the three runs cannot race each other's configuration.
    let (accel, lib, images) = quickstart_setup();
    for threads in [1usize, 2, 8] {
        let mut opts = PipelineOptions::quick();
        opts.search.threads = threads;
        opts.search.refine = RefinementSchedule::off();
        let res = run_pipeline(&accel, &lib, &images, &opts).expect("pipeline");
        assert_eq!(
            (res.pseudo_front.len(), res.final_front.len()),
            (65, 14),
            "front sizes drifted at threads={threads}"
        );
        assert_eq!(
            res.front_digest(),
            0x252e_0c00_c843_33a4,
            "quickstart digest moved at threads={threads}"
        );
    }
}

#[test]
fn refined_run_is_byte_identical_across_threads_and_batch_sizes() {
    let (accel, lib, images) = small_setup();
    let run = |threads: usize, batch_size: usize| {
        let mut opts = PipelineOptions::quick();
        opts.search.max_evals = 1_500;
        opts.search.threads = threads;
        opts.search.batch_size = batch_size;
        opts.search.refine = RefinementSchedule {
            epochs: 2,
            per_epoch: 8,
            novelty_weight: 0.5,
            replace_trees: 25,
        };
        snapshot(&run_pipeline(&accel, &lib, &images, &opts).expect("pipeline"))
    };
    let reference = run(1, 1);
    assert!(!reference.1.is_empty(), "empty pseudo front");
    for (threads, batch) in [(2, 1), (1, 17), (8, 64), (2, 256)] {
        assert_eq!(
            reference,
            run(threads, batch),
            "threads={threads} batch={batch} diverged: refinement broke the \
             pure-throughput-knob contract"
        );
    }
}

/// 2-D hypervolume (QoR × area) of a final front under joint
/// normalization with the other front — the equal-footing comparison
/// `autoax::pareto::joint_hypervolumes` provides.
fn final_points(res: &PipelineResult) -> Vec<TradeoffPoint> {
    res.final_front
        .iter()
        .map(|m| TradeoffPoint::new(m.qor, m.area))
        .collect()
}

#[test]
fn refinement_beats_the_unrefined_baseline_at_an_equal_real_eval_budget() {
    let (accel, lib, images) = quickstart_setup();
    let schedule = RefinementSchedule::quick();
    let extra = schedule.epochs * schedule.per_epoch;

    // Refined run: 50 training evals up front + 32 actively-selected
    // refinement evals.
    let mut refined_opts = PipelineOptions::quick();
    refined_opts.search.refine = schedule;
    let refined = run_pipeline(&accel, &lib, &images, &refined_opts).expect("refined");
    let report = refined.refinement.expect("refinement ran");
    assert_eq!(report.epochs_run, schedule.epochs);
    assert_eq!(report.real_evals, extra);

    // Unrefined baseline at the same total budget: all 50 + 32 evals
    // spent up front on uniformly random training configurations.
    let mut baseline_opts = PipelineOptions::quick();
    baseline_opts.train_configs += extra;
    let baseline = run_pipeline(&accel, &lib, &images, &baseline_opts).expect("baseline");
    assert!(baseline.refinement.is_none());

    // Fidelity on the held-out pairs (same 30-config test set in both
    // runs: same space, same seed stream).
    let refined_fid = (report.after.qor_test + report.after.hw_test) / 2.0;
    let baseline_fid = (baseline.fidelity.qor_test + baseline.fidelity.hw_test) / 2.0;
    assert!(
        refined_fid > baseline_fid,
        "active learning must beat random sampling at equal budget: \
         refined {refined_fid:.4} (qor {:.4} hw {:.4}) vs \
         baseline {baseline_fid:.4} (qor {:.4} hw {:.4})",
        report.after.qor_test,
        report.after.hw_test,
        baseline.fidelity.qor_test,
        baseline.fidelity.hw_test,
    );
    // ... and refinement must improve the models it started from.
    let before_fid = (report.before.qor_test + report.before.hw_test) / 2.0;
    assert!(
        refined_fid > before_fid,
        "fidelity-after {refined_fid:.4} must beat fidelity-before {before_fid:.4}"
    );

    // Real-front quality must not regress: hypervolume of the refined
    // run's final front >= the baseline's, normalized jointly.
    let hv =
        autoax::pareto::joint_hypervolumes(&[&final_points(&refined), &final_points(&baseline)]);
    assert!(
        hv[0] >= hv[1],
        "refined hypervolume {:.4} regressed below unrefined {:.4}",
        hv[0],
        hv[1]
    );
}
