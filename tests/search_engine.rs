//! Tests of the Step-3 search engine: golden parity of the trait-based
//! hill strategy against the pre-refactor `heuristic_pareto`, strategy
//! selection through the pipeline, and the NSGA-II hypervolume guarantee
//! on the quick pipeline configuration.

use autoax::config::{ConfigSpace, SlotChoices, SlotMember};
use autoax::model::{fit_models, EvaluatedSet, ModelEstimator};
use autoax::pareto::{joint_hypervolumes, TradeoffPoint};
use autoax::pipeline::{run_pipeline, PipelineOptions};
use autoax::search::{run_search, SearchAlgo, SearchOptions};
use autoax::Configuration;
use autoax_circuit::charlib::CircuitId;
use autoax_circuit::OpSignature;

fn toy_space(slots: usize, per_slot: usize) -> ConfigSpace {
    ConfigSpace::new(
        (0..slots)
            .map(|i| SlotChoices {
                name: format!("s{i}"),
                signature: OpSignature::ADD8,
                members: (0..per_slot)
                    .map(|k| SlotMember {
                        id: CircuitId(k as u32),
                        wmed: k as f64,
                    })
                    .collect(),
            })
            .collect(),
    )
}

/// FNV-style digest of a front, payload genes included — the fingerprint
/// the golden values below were captured with.
fn front_digest(front: &autoax::ParetoFront<Configuration>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut push = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    for (p, c) in front.iter() {
        push(p.qor.to_bits());
        push(p.cost.to_bits());
        for &g in c.genes() {
            push(g as u64);
        }
    }
    h
}

#[test]
fn hill_strategy_is_byte_identical_to_pre_refactor_heuristic_pareto() {
    // Golden parity: these digests were captured from the pre-engine
    // `heuristic_pareto` (commit 95a5961, before the SearchStrategy /
    // ConfigBatch refactor) on this exact space, estimator and options.
    // The trait-based island hill climb must reproduce them bit for bit —
    // points *and* payload genomes.
    let estimator = |c: &Configuration| {
        let a: f64 = c.genes().iter().map(|&v| (v as f64 + 1.0).ln()).sum();
        let b: f64 = c
            .genes()
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64 + 1.0) * v as f64)
            .sum();
        TradeoffPoint::new(-a, 100.0 - b * 0.5 + (a * 3.0).sin())
    };
    let space = toy_space(5, 7);
    for (seed, evals, members, digest) in [
        (41u64, 5000usize, 26usize, 0x876ec5b9b2eca8c4u64),
        (7, 2000, 32, 0xdd55b109c741da21),
    ] {
        let opts = SearchOptions {
            max_evals: evals,
            stagnation_limit: 50,
            seed,
            ..SearchOptions::default()
        };
        let front = run_search(&space, &estimator, &opts);
        assert_eq!(front.len(), members, "seed {seed}: front size changed");
        assert_eq!(
            front_digest(&front),
            digest,
            "seed {seed}: hill output diverged from the pre-refactor golden front"
        );
    }
}

/// Shared quick-scale model setup: tiny library, tiny images, RF models —
/// the estimator the quick pipeline searches over.
struct QuickModels {
    lib: autoax_circuit::charlib::ComponentLibrary,
    pre: autoax::preprocess::Preprocessed,
    models: autoax::model::FittedModels,
}

fn quick_models() -> QuickModels {
    use autoax::evaluate::Evaluator;
    use autoax::preprocess::{preprocess, PreprocessOptions};
    let accel = autoax_accel::sobel::SobelEd::new();
    let lib =
        autoax_circuit::charlib::build_library(&autoax_circuit::charlib::LibraryConfig::tiny());
    let images = autoax_image::synthetic::benchmark_suite(2, 48, 32, 5);
    let pre = preprocess(&accel, &lib, &images, &PreprocessOptions::default()).expect("preprocess");
    let ev = Evaluator::new(&accel, &lib, &pre.space, &images);
    let train = EvaluatedSet::generate(&ev, &pre.space, 50, 42);
    let models = fit_models(
        autoax_ml::EngineKind::RandomForest,
        &pre.space,
        &lib,
        &train,
        42,
    )
    .expect("fit quick models");
    QuickModels { lib, pre, models }
}

#[test]
fn nsga2_hypervolume_at_least_random_sampling_on_quick_config() {
    // Acceptance criterion: at the same eval budget (the quick pipeline's
    // 3000 estimates), NSGA-II achieves hypervolume >= the random-sampling
    // baseline, measured on jointly normalized estimated fronts.
    let q = quick_models();
    let estimator = ModelEstimator::new(&q.models, &q.pre.space, &q.lib);
    let opts = SearchOptions {
        max_evals: PipelineOptions::quick().search.max_evals,
        seed: 42,
        ..SearchOptions::default()
    };
    let nsga = SearchAlgo::Nsga2
        .strategy()
        .search(&q.pre.space, &estimator, &opts);
    let rs = SearchAlgo::Random
        .strategy()
        .search(&q.pre.space, &estimator, &opts);
    assert!(!nsga.is_empty() && !rs.is_empty());
    let hv = joint_hypervolumes(&[&nsga.points(), &rs.points()]);
    assert!(
        hv[0] >= hv[1],
        "nsga2 hypervolume {} below random sampling {}",
        hv[0],
        hv[1]
    );
}

#[test]
fn every_strategy_produces_a_nonempty_minimal_front_on_quick_models() {
    let q = quick_models();
    let estimator = ModelEstimator::new(&q.models, &q.pre.space, &q.lib);
    for algo in SearchAlgo::ALL {
        // exhaustive only when the reduced space is small enough
        if algo == SearchAlgo::Exhaustive && q.pre.space.size() > 1e6 {
            continue;
        }
        let opts = SearchOptions {
            strategy: algo,
            max_evals: 2000,
            seed: 9,
            ..SearchOptions::default()
        };
        let front = run_search(&q.pre.space, &estimator, &opts);
        assert!(!front.is_empty(), "{algo}: empty front");
        let pts = front.points();
        for (i, a) in pts.iter().enumerate() {
            for (j, b) in pts.iter().enumerate() {
                if i != j {
                    assert!(!a.dominates(b), "{algo}: {a:?} dominates {b:?}");
                }
            }
        }
    }
}

#[test]
fn pipeline_runs_under_every_portable_strategy() {
    // The search_strategy axis threaded end to end: the full pipeline
    // must produce a non-empty final front under each budgeted strategy,
    // and report the strategy in its timings.
    let accel = autoax_accel::sobel::SobelEd::new();
    let lib =
        autoax_circuit::charlib::build_library(&autoax_circuit::charlib::LibraryConfig::tiny());
    let images = autoax_image::synthetic::benchmark_suite(2, 64, 48, 9);
    for algo in [SearchAlgo::Hill, SearchAlgo::Nsga2, SearchAlgo::Random] {
        let opts = PipelineOptions::quick().with_strategy(algo);
        let res =
            run_pipeline(&accel, &lib, &images, &opts).unwrap_or_else(|e| panic!("{algo}: {e}"));
        assert!(!res.pseudo_front.is_empty(), "{algo}: empty pseudo front");
        assert!(!res.final_front.is_empty(), "{algo}: empty final front");
        assert_eq!(res.timings.search_strategy, algo.name());
    }
}

#[test]
fn nsga2_pipeline_is_deterministic_and_thread_invariant() {
    let accel = autoax_accel::sobel::SobelEd::new();
    let lib =
        autoax_circuit::charlib::build_library(&autoax_circuit::charlib::LibraryConfig::tiny());
    let images = autoax_image::synthetic::benchmark_suite(2, 64, 48, 9);
    let run = |threads: usize, batch: usize| {
        let mut opts = PipelineOptions::quick().with_strategy(SearchAlgo::Nsga2);
        opts.search.threads = threads;
        opts.search.batch_size = batch;
        run_pipeline(&accel, &lib, &images, &opts).expect("nsga2 pipeline")
    };
    let reference = run(1, 1);
    let ref_pseudo: Vec<(u64, u64, Configuration)> = reference
        .pseudo_front
        .iter()
        .map(|(p, c)| (p.qor.to_bits(), p.cost.to_bits(), c.clone()))
        .collect();
    for (threads, batch) in [(2, 17), (8, 256)] {
        let other = run(threads, batch);
        let other_pseudo: Vec<(u64, u64, Configuration)> = other
            .pseudo_front
            .iter()
            .map(|(p, c)| (p.qor.to_bits(), p.cost.to_bits(), c.clone()))
            .collect();
        assert_eq!(
            ref_pseudo, other_pseudo,
            "nsga2 pseudo front diverged at threads={threads} batch={batch}"
        );
        assert_eq!(reference.final_front.len(), other.final_front.len());
        for (a, b) in reference.final_front.iter().zip(other.final_front.iter()) {
            assert_eq!(a.qor, b.qor);
            assert_eq!(a.area, b.area);
            assert_eq!(a.config, b.config);
        }
    }
}
