//! Deterministic concurrency tests for the service tier: N threads
//! rendezvous on a barrier and submit the *identical* job, and the
//! engine must (a) run the pipeline exactly once — asserted through the
//! instrumented execution counter, not timing — and (b) hand every
//! waiter a byte-identical result.
//!
//! The determinism comes from the engine's structure, not from sleeps:
//! single-flight makes concurrent arrivals followers of one leader, and
//! the leader's post-leadership result-cache double-check catches the
//! arrivals that slip in after a previous leader already finished. Both
//! paths are exercised here because the barrier releases threads into an
//! arbitrary scheduler interleaving.

use autoax::JobSpec;
use autoax::SearchAlgo;
use autoax_serve::client;
use autoax_serve::{EngineConfig, HttpLimits, JobEngine, JobRequest, Json, Served, ServerConfig};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Barrier};

fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("autoax-serve-it-{}-{label}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A deliberately tiny—but valid—budget so a cold job takes seconds.
fn tiny_spec(seed: u64) -> JobSpec {
    JobSpec {
        strategy: SearchAlgo::Hill,
        max_evals: 150,
        train_configs: 12,
        test_configs: 8,
        final_eval_cap: 6,
        seed,
    }
}

fn request(tenant: &str, seed: u64) -> JobRequest {
    JobRequest {
        tenant: tenant.to_string(),
        workload: "sobel".to_string(),
        library: "tiny".to_string(),
        spec: tiny_spec(seed),
    }
}

fn wide_open_engine(label: &str, threads: usize) -> JobEngine {
    let mut cfg = EngineConfig::new(scratch(label));
    // Admission must never be the reason a thread fails these tests.
    cfg.global_jobs = threads.max(4);
    cfg.tenant_jobs = threads.max(4);
    JobEngine::new(cfg)
}

#[test]
fn identical_concurrent_jobs_execute_exactly_once() {
    let threads = 8;
    let engine = Arc::new(wide_open_engine("dedupe", threads));
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|i| {
            let engine = Arc::clone(&engine);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                // Every thread submits the same job under its own tenant:
                // dedupe is keyed on content, not on who asks.
                let req = request(&format!("tenant-{i}"), 42);
                barrier.wait();
                engine.submit(&req).expect("identical job must succeed")
            })
        })
        .collect();
    let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // The hard invariant: one pipeline execution, no matter how the
    // scheduler interleaved the eight submissions.
    assert_eq!(engine.executions(), 1, "exactly one pipeline execution");
    let computed = outcomes
        .iter()
        .filter(|o| o.served == Served::Computed)
        .count();
    assert_eq!(computed, 1, "exactly one submission computed");
    for o in &outcomes {
        assert!(
            matches!(
                o.served,
                Served::Computed | Served::Deduped | Served::Cached
            ),
            "unexpected service path"
        );
    }

    // Every waiter got the byte-identical result: same digest, same
    // serialized bytes.
    let reference = outcomes[0].result.to_json().to_string();
    for o in &outcomes {
        assert_eq!(o.result.front_digest, outcomes[0].result.front_digest);
        assert_eq!(o.result.to_json().to_string(), reference);
    }
    assert!(
        !outcomes[0].result.members.is_empty(),
        "a successful job carries front members"
    );

    // A later identical submission is answered from the result cache
    // without a new execution.
    let again = engine.submit(&request("latecomer", 42)).unwrap();
    assert_eq!(again.served, Served::Cached);
    assert_eq!(again.result.front_digest, outcomes[0].result.front_digest);
    assert_eq!(engine.executions(), 1);
}

#[test]
fn distinct_jobs_do_not_dedupe_and_seeds_change_results() {
    let threads = 3;
    let engine = Arc::new(wide_open_engine("distinct", threads));
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|i| {
            let engine = Arc::clone(&engine);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let req = request("shared-tenant", 100 + i as u64);
                barrier.wait();
                engine.submit(&req).expect("distinct jobs must all run")
            })
        })
        .collect();
    let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(engine.executions(), 3, "three distinct jobs, three runs");
    assert!(outcomes.iter().all(|o| o.served == Served::Computed));
    // Different seeds are different jobs; byte-equal fronts would point
    // at a key collision.
    let digests: std::collections::HashSet<u64> =
        outcomes.iter().map(|o| o.result.front_digest).collect();
    assert!(digests.len() > 1, "distinct seeds should differ somewhere");
}

#[test]
fn server_round_trip_dedupes_and_serves_identical_bytes() {
    let mut cfg = ServerConfig::on_loopback(scratch("server"));
    cfg.engine.global_jobs = 8;
    cfg.engine.tenant_jobs = 8;
    let server = autoax_serve::spawn(cfg).expect("bind loopback");
    let addr = server.addr();

    let job = Json::parse(
        r#"{"workload":"sobel","strategy":"hill","max_evals":150,
            "train_configs":12,"test_configs":8,"final_eval_cap":6,"seed":7}"#,
    )
    .unwrap();
    let distinct = Json::parse(
        r#"{"workload":"sobel","strategy":"hill","max_evals":150,
            "train_configs":12,"test_configs":8,"final_eval_cap":6,"seed":8}"#,
    )
    .unwrap();

    // Two identical submissions and one distinct, concurrently.
    let mut handles = Vec::new();
    for (tenant, body) in [("a", job.clone()), ("b", job.clone()), ("c", distinct)] {
        let body = body.clone();
        handles.push(std::thread::spawn(move || {
            client::submit_job(addr, tenant, &body).expect("submit")
        }));
    }
    let responses: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for r in &responses {
        assert_eq!(r.status, 200, "error: {:?}", r.error());
        assert!(r.front_digest().is_some(), "done trailer present");
    }
    let twin_a = responses[0].front_digest().unwrap();
    let twin_b = responses[1].front_digest().unwrap();
    let other = responses[2].front_digest().unwrap();
    assert_eq!(twin_a, twin_b, "identical jobs, identical digests");
    assert_ne!(twin_a, other, "distinct seed, distinct digest");

    // The engine behind the socket ran exactly two pipelines.
    assert_eq!(server.engine().executions(), 2);

    // Health and stats endpoints answer.
    let health = client::request(addr, "GET", "/health", &[], None).unwrap();
    assert_eq!(health.status, 200);
    let stats = client::request(addr, "GET", "/stats", &[], None).unwrap();
    assert_eq!(stats.status, 200);
    assert_eq!(
        stats.lines[0].get("executions").and_then(Json::as_f64),
        Some(2.0)
    );

    // A repeat after the fact is served from cache — still the same bytes.
    let repeat = client::submit_job(addr, "d", &job).unwrap();
    assert_eq!(repeat.served(), Some("cached"));
    assert_eq!(repeat.front_digest().unwrap(), twin_a);
    assert_eq!(server.engine().executions(), 2);

    server.stop();
    // A stopped server accepts no new connections.
    assert!(client::request(addr, "GET", "/health", &[], None).is_err());
}

/// Wire-level protocol robustness (satellite to the in-crate table test):
/// truncated bodies, oversize declarations, malformed JSON and unknown
/// routes each map to their typed status, and a mid-stream client
/// disconnect neither wedges the server nor leaks a job slot.
#[test]
fn wire_protocol_errors_and_disconnects_leave_the_server_healthy() {
    let cfg = ServerConfig::on_loopback(scratch("robust"));
    let max_body = HttpLimits::default().max_body_bytes;
    let server = autoax_serve::spawn(cfg).expect("bind loopback");
    let addr = server.addr();

    let raw = |payload: &str| -> u16 {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(payload.as_bytes()).unwrap();
        s.shutdown(Shutdown::Write).unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        buf.split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .unwrap_or(0)
    };

    // Truncated body: declares 50 bytes, sends 4, closes.
    assert_eq!(
        raw("POST /jobs HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"wo"),
        400
    );
    // Declared body over the server's limit is refused before reading.
    assert_eq!(
        raw(&format!(
            "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            max_body + 1
        )),
        413
    );
    // Malformed JSON in a complete body.
    assert_eq!(
        raw("POST /jobs HTTP/1.1\r\nContent-Length: 9\r\n\r\n{\"x\": 1,}"),
        400
    );
    // Missing Content-Length on a POST.
    assert_eq!(raw("POST /jobs HTTP/1.1\r\n\r\n"), 400);
    // Unknown route.
    assert_eq!(raw("GET /nope HTTP/1.1\r\n\r\n"), 404);
    // Not even HTTP.
    assert_eq!(raw("garbage\r\n\r\n"), 400);

    // Mid-stream disconnect: submit a real job and hang up immediately
    // without reading the response.
    let job = Json::parse(
        r#"{"workload":"sobel","strategy":"hill","max_evals":150,
            "train_configs":12,"test_configs":8,"final_eval_cap":6,"seed":9}"#,
    )
    .unwrap();
    {
        let mut s = TcpStream::connect(addr).unwrap();
        let body = job.to_string();
        s.write_all(
            format!(
                "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
        // Dropped here: the server discovers the dead socket when it
        // writes the stream, and must simply clean up.
    }

    // The same job through a well-behaved client still completes —
    // either joining the abandoned run or reading its cached result —
    // and the server remains fully responsive afterwards.
    let resp = client::submit_job(addr, "after", &job).unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.front_digest().is_some());
    assert_eq!(server.engine().executions(), 1, "one run served both");
    let health = client::request(addr, "GET", "/health", &[], None).unwrap();
    assert_eq!(health.status, 200);
    // The abandoned connection's permit is released when its handler
    // returns, which can trail our response by a scheduling beat.
    let settled = (0..200).any(|_| {
        if server.engine().running() == 0 {
            true
        } else {
            std::thread::sleep(std::time::Duration::from_millis(10));
            false
        }
    });
    assert!(settled, "job slots must drain after a client disconnect");
    server.stop();
}
