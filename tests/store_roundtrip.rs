//! Property-based tests (proptest) for the `autoax-store` codec: library
//! entries and fitted regressors round-trip exactly, and any corruption
//! of a sealed blob is detected.

use autoax_circuit::approx::adders::AdderKind;
use autoax_circuit::approx::muls::MulKind;
use autoax_circuit::approx::subs::SubKind;
use autoax_circuit::approx::{Behavior, FaCell};
use autoax_circuit::charlib::{CircuitEntry, CircuitId};
use autoax_circuit::{ErrorMetrics, HwReport, OpSignature};
use autoax_ml::engine::EngineKind;
use autoax_ml::Matrix;
use autoax_store::codec::{Decoder, Encoder};
use autoax_store::container::{seal, unseal};
use autoax_store::{circuit_codec, ml_codec};
use proptest::prelude::*;

fn adder_kind_strategy() -> impl Strategy<Value = AdderKind> {
    prop_oneof![
        Just(AdderKind::Exact),
        Just(AdderKind::ExactCla),
        (1u32..8).prop_map(|k| AdderKind::TruncZero { k }),
        (1u32..8).prop_map(|k| AdderKind::TruncPass { k }),
        (1u32..8).prop_map(|k| AdderKind::Loa { k }),
        (1u32..8).prop_map(|k| AdderKind::XorLower { k }),
        (1u32..8).prop_map(|r| AdderKind::Aca { r }),
        (1u32..4, 1u32..4).prop_map(|(r, p)| AdderKind::Gear { r, p }),
    ]
}

fn fa_cell_strategy() -> impl Strategy<Value = FaCell> {
    (any::<u8>(), any::<u8>()).prop_map(|(sum, carry)| FaCell { sum, carry })
}

fn behavior_strategy() -> impl Strategy<Value = Behavior> {
    prop_oneof![
        adder_kind_strategy().prop_map(|kind| Behavior::Adder { w: 8, kind }),
        proptest::collection::vec(fa_cell_strategy(), 8..9).prop_map(|cells| {
            Behavior::Adder {
                w: 8,
                kind: AdderKind::CellRipple {
                    cells: cells.into(),
                },
            }
        }),
        (1u32..10).prop_map(|k| Behavior::Subtractor {
            w: 10,
            kind: SubKind::TruncZero { k },
        }),
        (0u32..14, 0u32..8).prop_map(|(vbl, hbl)| Behavior::Multiplier {
            wa: 8,
            wb: 8,
            kind: MulKind::Bam { vbl, hbl },
        }),
        any::<u16>().prop_map(|leaf_mask| Behavior::Multiplier {
            wa: 8,
            wb: 8,
            kind: MulKind::Udm { leaf_mask },
        }),
    ]
}

fn entry_strategy() -> impl Strategy<Value = CircuitEntry> {
    (
        behavior_strategy(),
        any::<u32>(),
        (0.0f64..1e4, 0.0f64..10.0, 0.0f64..100.0),
        (0.0f64..1e3, any::<u64>(), 0.0f64..1.0),
    )
        .prop_map(|(behavior, id, (area, delay, power), (mae, wce, er))| {
            let label = behavior.label();
            CircuitEntry {
                id: CircuitId(id),
                behavior,
                label,
                hw: HwReport {
                    area,
                    delay,
                    power,
                    energy: area * 0.35 + power,
                    cells: (area / 2.0) as usize,
                },
                err: ErrorMetrics {
                    mae,
                    wce,
                    er,
                    mse: mae * mae,
                    var_ed: mae * 0.5,
                    mre: er * 0.25,
                    samples: 65536,
                },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any library entry round-trips exactly: behaviour, label and the
    /// full characterization tables, bit for bit.
    #[test]
    fn library_entries_round_trip(entry in entry_strategy()) {
        let mut e = Encoder::new();
        circuit_codec::put_circuit_entry(&mut e, &entry);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let rt = circuit_codec::take_circuit_entry(&mut d).unwrap();
        d.finish().unwrap();
        prop_assert_eq!(rt.id, entry.id);
        prop_assert_eq!(&rt.behavior, &entry.behavior);
        prop_assert_eq!(&rt.label, &entry.label);
        prop_assert_eq!(rt.hw.area.to_bits(), entry.hw.area.to_bits());
        prop_assert_eq!(rt.hw.delay.to_bits(), entry.hw.delay.to_bits());
        prop_assert_eq!(rt.hw.power.to_bits(), entry.hw.power.to_bits());
        prop_assert_eq!(rt.hw.energy.to_bits(), entry.hw.energy.to_bits());
        prop_assert_eq!(rt.hw.cells, entry.hw.cells);
        prop_assert_eq!(rt.err.mae.to_bits(), entry.err.mae.to_bits());
        prop_assert_eq!(rt.err.wce, entry.err.wce);
        prop_assert_eq!(rt.err.mse.to_bits(), entry.err.mse.to_bits());
        prop_assert_eq!(rt.err.samples, entry.err.samples);
        // decoded behaviours also *evaluate* identically
        for (a, b) in [(0u64, 0u64), (3, 250), (255, 255), (77, 13)] {
            prop_assert_eq!(rt.behavior.eval(a, b), entry.behavior.eval(a, b));
        }
    }

    /// Any single-bit corruption anywhere in a sealed blob is detected.
    #[test]
    fn sealed_blobs_detect_any_corruption(
        payload in proptest::collection::vec(any::<u8>(), 1..200),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let blob = seal(*b"PROP", payload);
        prop_assert!(unseal(&blob, *b"PROP").is_ok());
        let mut corrupt = blob.clone();
        let pos = ((pos_frac * blob.len() as f64) as usize).min(blob.len() - 1);
        corrupt[pos] ^= 1 << bit;
        prop_assert!(
            unseal(&corrupt, *b"PROP").is_err(),
            "flip at byte {} bit {} went undetected", pos, bit
        );
    }

    /// Every supported engine round-trips to bitwise-identical
    /// predictions, for arbitrary seeds.
    #[test]
    fn serialized_regressors_predict_bitwise_identically(seed in any::<u64>()) {
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![((i * 7) % 23) as f64 / 22.0, ((i * 13) % 17) as f64 / 16.0])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * 2.0 + r[1] * r[1]).collect();
        let x = Matrix::from_rows(&rows);
        for kind in [
            EngineKind::RandomForest,
            EngineKind::DecisionTree,
            EngineKind::BayesianRidge,
            EngineKind::StochasticGradientDescent,
        ] {
            let mut m = kind.make(seed);
            m.fit(&x, &y).unwrap();
            let mut e = Encoder::new();
            ml_codec::put_regressor(&mut e, m.as_ref()).unwrap();
            let bytes = e.into_bytes();
            let mut d = Decoder::new(&bytes);
            let rt = ml_codec::take_regressor(&mut d).unwrap();
            d.finish().unwrap();
            for row in x.rows_iter() {
                prop_assert_eq!(
                    m.predict_row(row).to_bits(),
                    rt.predict_row(row).to_bits(),
                    "{} diverged after round-trip", kind
                );
            }
        }
    }

    /// The compiled-forest arena survives the full persistence cycle:
    /// compiling a fitted forest/tree, exporting its `NodeRepr` lists
    /// through the store codec, reloading and recompiling yields a
    /// lane-for-lane identical arena (pinned by the arena digest), for
    /// arbitrary seeds.
    #[test]
    fn compiled_arena_survives_store_round_trip(seed in any::<u64>()) {
        let rows: Vec<Vec<f64>> = (0..70)
            .map(|i| vec![((i * 11) % 19) as f64 / 18.0, ((i * 5) % 13) as f64 / 12.0])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * 3.0 - r[1] * r[1]).collect();
        let x = Matrix::from_rows(&rows);
        for kind in [EngineKind::RandomForest, EngineKind::DecisionTree] {
            let mut m = kind.make(seed);
            m.fit(&x, &y).unwrap();
            let compile = |r: &dyn autoax_ml::Regressor| {
                let any = r.as_any().expect("tree models expose as_any");
                if let Some(f) = any.downcast_ref::<autoax_ml::forest::RandomForest>() {
                    autoax_ml::CompiledForest::from_forest(f).unwrap()
                } else {
                    let t = any.downcast_ref::<autoax_ml::tree::DecisionTree>().unwrap();
                    autoax_ml::CompiledForest::from_tree(t).unwrap()
                }
            };
            let before = compile(m.as_ref());
            let mut e = Encoder::new();
            ml_codec::put_regressor(&mut e, m.as_ref()).unwrap();
            let bytes = e.into_bytes();
            let mut d = Decoder::new(&bytes);
            let rt = ml_codec::take_regressor(&mut d).unwrap();
            d.finish().unwrap();
            let after = compile(rt.as_ref());
            prop_assert_eq!(
                before.digest(),
                after.digest(),
                "{} arena diverged after store round-trip", kind
            );
            prop_assert_eq!(before.node_count(), after.node_count());
            prop_assert_eq!(before.tree_count(), after.tree_count());
        }
    }

    /// Raw netlist behaviours (the mutant family) survive the netlist
    /// codec with identical structure and function.
    #[test]
    fn mutant_netlists_round_trip(seed in any::<u64>(), n_muts in 1u32..6) {
        use autoax_circuit::approx::mutate::mutate_netlist;
        let base = Behavior::exact_for(OpSignature::ADD8).build_netlist();
        let mutated = mutate_netlist(&base, n_muts, seed);
        let mut e = Encoder::new();
        circuit_codec::put_netlist(&mut e, &mutated);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let rt = circuit_codec::take_netlist(&mut d).unwrap();
        d.finish().unwrap();
        prop_assert_eq!(&rt, &mutated);
    }
}
