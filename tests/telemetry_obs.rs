//! Observability contract tests: telemetry must see everything and
//! change nothing.
//!
//! * the quickstart workload's pinned front digest must reproduce
//!   byte-identically with metrics *and* span collection fully enabled
//!   (the digest value is pinned in `workload_parity.rs`; this file
//!   re-asserts it under observation);
//! * interleaved spans on multiple threads must always drain to a
//!   well-formed forest (property test);
//! * the service must expose `/healthz` and Prometheus `/metrics`, echo
//!   `X-Request-Id`, and thread the id through the NDJSON job events.

use autoax::pipeline::{run_pipeline, PipelineOptions};
use autoax_accel::sobel::SobelEd;
use autoax_circuit::charlib::{build_library, LibraryConfig};
use autoax_image::synthetic::benchmark_suite;
use autoax_telemetry as telemetry;
use proptest::prelude::*;
use std::sync::Mutex;

/// Tests here toggle process-global telemetry flags and drain the global
/// span collector; serialize them.
fn guard() -> std::sync::MutexGuard<'static, ()> {
    static M: Mutex<()> = Mutex::new(());
    M.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn quickstart_digest_is_byte_identical_with_telemetry_fully_enabled() {
    let _g = guard();
    let lib = build_library(&LibraryConfig::tiny());
    let images = benchmark_suite(4, 96, 64, 7);
    let accel = SobelEd::new();

    telemetry::set_metrics(true);
    telemetry::set_tracing(true);
    let res = run_pipeline(&accel, &lib, &images, &PipelineOptions::quick()).expect("pipeline");
    telemetry::set_tracing(false);
    telemetry::set_metrics(false);
    let spans = telemetry::take_spans();

    // Observation captured the run...
    for name in [
        "pipeline.run",
        "pipeline.step1.preprocess",
        "pipeline.step2.fit",
        "pipeline.step3.search",
        "search.hill",
    ] {
        assert!(
            spans.iter().any(|s| s.name == name),
            "span `{name}` missing from the trace ({} spans)",
            spans.len()
        );
    }
    // ...and the exports of that capture are loadable.
    let json = telemetry::export_chrome_trace(&spans);
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(!telemetry::export_folded(&spans).is_empty());

    // ...without perturbing a single byte of the result.
    assert_eq!(res.pseudo_front.len(), 65);
    assert_eq!(res.final_front.len(), 14);
    assert_eq!(
        res.front_digest(),
        0x252e_0c00_c843_33a4,
        "enabling telemetry changed the front digest"
    );
}

/// Per-thread static span names, indexed `[thread][depth]`.
static NAMES: [[&str; 4]; 3] = [
    ["pt.a0", "pt.a1", "pt.a2", "pt.a3"],
    ["pt.b0", "pt.b1", "pt.b2", "pt.b3"],
    ["pt.c0", "pt.c1", "pt.c2", "pt.c3"],
];

fn open_nested(thread: usize, idx: usize, remaining: usize) {
    if remaining == 0 {
        return;
    }
    let _s = telemetry::span(NAMES[thread][idx]);
    std::thread::yield_now();
    open_nested(thread, idx + 1, remaining - 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Three threads interleave nested span open/close sequences of
    /// seed-chosen depths; the drained records must form a well-formed
    /// forest: parents exist, live on the same thread, opened before and
    /// closed after their children, and nest by the expected name chain.
    #[test]
    fn interleaved_threads_yield_a_well_formed_span_forest(seed in any::<u64>()) {
        let _g = guard();
        let _ = telemetry::take_spans(); // drop leftovers from other tests
        telemetry::set_tracing(true);
        let depths: Vec<usize> = (0..3).map(|t| 1 + ((seed >> (t * 2)) & 3) as usize).collect();
        let handles: Vec<_> = depths
            .iter()
            .enumerate()
            .map(|(t, &d)| std::thread::spawn(move || open_nested(t, 0, d)))
            .collect();
        for h in handles {
            h.join().expect("span thread");
        }
        telemetry::set_tracing(false);
        let spans: Vec<_> = telemetry::take_spans()
            .into_iter()
            .filter(|s| s.name.starts_with("pt."))
            .collect();
        prop_assert_eq!(spans.len(), depths.iter().sum::<usize>());
        for s in &spans {
            let t = NAMES.iter().position(|row| row.contains(&s.name)).unwrap();
            let d = NAMES[t].iter().position(|&n| n == s.name).unwrap();
            if d == 0 {
                prop_assert_eq!(s.parent, 0, "{} must be a thread root", s.name);
                continue;
            }
            let parent = spans
                .iter()
                .find(|p| p.id == s.parent)
                .expect("parent record present");
            prop_assert_eq!(parent.name, NAMES[t][d - 1], "wrong nesting for {}", s.name);
            prop_assert_eq!(parent.thread, s.thread, "parent crossed threads");
            prop_assert!(parent.start_ns <= s.start_ns, "parent opened after child");
            prop_assert!(
                parent.start_ns + parent.dur_ns >= s.start_ns + s.dur_ns,
                "parent closed before child"
            );
        }
    }
}

mod serve_obs {
    use super::guard;
    use autoax_serve::{client, Json, ServerConfig};
    use std::io::{Read, Write};

    fn job_body(seed: u64) -> Json {
        autoax_serve::json::obj([
            ("workload", Json::Str("sobel".into())),
            ("library", Json::Str("tiny".into())),
            ("strategy", Json::Str("hill".into())),
            ("max_evals", Json::Num(200.0)),
            ("train_configs", Json::Num(12.0)),
            ("test_configs", Json::Num(8.0)),
            ("final_eval_cap", Json::Num(6.0)),
            ("seed", Json::Num(seed as f64)),
        ])
    }

    #[test]
    fn service_exposes_healthz_metrics_and_request_ids() {
        let _g = guard();
        let dir = std::env::temp_dir().join(format!("autoax-obs-test-{}", std::process::id()));
        let server = autoax_serve::spawn(ServerConfig::on_loopback(&dir)).expect("spawn");
        let addr = server.addr();

        let health = client::request(addr, "GET", "/healthz", &[], None).expect("healthz");
        assert_eq!(health.status, 200);

        // Supplied request id: echoed in the header and both NDJSON
        // lifecycle events.
        let resp = client::request(
            addr,
            "POST",
            "/jobs",
            &[("x-tenant", "t"), ("x-request-id", "rid-1")],
            Some(&job_body(5)),
        )
        .expect("job");
        assert_eq!(resp.status, 200, "{:?}", resp.error());
        assert_eq!(resp.header("x-request-id"), Some("rid-1"));
        for event in ["accepted", "done"] {
            assert_eq!(
                resp.event(event)
                    .and_then(|e| e.get("request_id"))
                    .and_then(Json::as_str),
                Some("rid-1"),
                "`{event}` event lacks the request id"
            );
        }

        // No id supplied: the server mints a non-empty one.
        let resp2 = client::submit_job(addr, "t", &job_body(5)).expect("repeat");
        assert_eq!(resp2.served(), Some("cached"));
        let minted = resp2.header("x-request-id").expect("generated id");
        assert!(!minted.is_empty() && minted != "rid-1");

        // Prometheus exposition with the traffic above on the counters.
        let text = {
            let mut s = std::net::TcpStream::connect(addr).expect("connect");
            s.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
                .expect("send");
            let mut buf = String::new();
            s.read_to_string(&mut buf).expect("read");
            buf
        };
        assert!(text.starts_with("HTTP/1.1 200 OK"));
        assert!(text.contains("# TYPE autoax_serve_jobs_total counter"));
        assert!(text.contains("autoax_serve_jobs_total{served=\"cached\"} 1"));
        assert!(text.contains("autoax_serve_requests_total"));
        server.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
