//! Golden-digest parity for the application-layer generalization, plus
//! the NN workload's end-to-end pipeline contract.
//!
//! The `Workload` refactor (generic `run_pipeline` over any QoR domain)
//! must leave the image path **byte-identical**: the quickstart example's
//! Sobel front digest, pseudo-Pareto size and final-front size are pinned
//! here to the values captured before the refactor (commit 95e7ccb). If
//! this test fails, the generalization changed numeric behaviour — that
//! is a bug, not a baseline to re-pin.

use autoax::pipeline::{run_pipeline, PipelineOptions};
use autoax_accel::sobel::SobelEd;
use autoax_circuit::charlib::{build_library, LibraryConfig};
use autoax_image::synthetic::benchmark_suite;
use autoax_nn::NnScenario;

#[test]
fn sobel_quickstart_front_is_bit_identical_to_pre_workload_refactor() {
    // exactly the quickstart example's setup: tiny library, 4 synthetic
    // 96×64 images (seed 7), quick pipeline budgets, hill search
    let lib = build_library(&LibraryConfig::tiny());
    let images = benchmark_suite(4, 96, 64, 7);
    let accel = SobelEd::new();
    let res = run_pipeline(&accel, &lib, &images, &PipelineOptions::quick()).expect("pipeline");
    assert_eq!(
        res.pseudo_front.len(),
        65,
        "pseudo-Pareto size drifted from the pre-refactor baseline"
    );
    assert_eq!(
        res.final_front.len(),
        14,
        "final front size drifted from the pre-refactor baseline"
    );
    assert_eq!(
        res.front_digest(),
        0x252e_0c00_c843_33a4,
        "front digest drifted: the application-layer generalization must \
         leave Sobel results byte-identical"
    );
    assert_eq!(res.qor_metric, "SSIM");
}

#[test]
fn nn_pipeline_runs_all_three_steps_end_to_end() {
    // the same generic pipeline on the NN workload: profiling → models
    // with reported fidelity → search → non-empty accuracy/area/energy
    // front with accuracy in [0, 1] and the exact design reaching 1.0
    let lib = build_library(&LibraryConfig::tiny());
    let (accel, samples) = NnScenario::tiny().build();
    let res = run_pipeline(&accel, &lib, &samples, &PipelineOptions::quick()).expect("nn pipeline");
    assert_eq!(res.qor_metric, "top-1 accuracy");
    assert!(!res.final_front.is_empty(), "empty NN front");
    for m in &res.final_front {
        assert!(
            (0.0..=1.0).contains(&m.qor),
            "accuracy out of range: {}",
            m.qor
        );
    }
    let best = res
        .final_front
        .iter()
        .map(|m| m.qor)
        .fold(f64::NEG_INFINITY, f64::max);
    assert_eq!(best, 1.0, "the exact configuration must reach accuracy 1.0");
    for (name, v) in [
        ("qor_train", res.fidelity.qor_train),
        ("qor_test", res.fidelity.qor_test),
        ("hw_train", res.fidelity.hw_train),
        ("hw_test", res.fidelity.hw_test),
    ] {
        assert!(
            (0.0..=1.0).contains(&v),
            "fidelity {name} out of [0,1]: {v}"
        );
    }
    // PMFs profiled for every MAC slot
    assert_eq!(res.preprocessed.pmfs.len(), 4);
    for pmf in &res.preprocessed.pmfs {
        assert!(pmf.total() > 0);
    }
}

#[test]
fn nn_pipeline_is_deterministic() {
    let lib = build_library(&LibraryConfig::tiny());
    let (accel, samples) = NnScenario::tiny().build();
    let opts = PipelineOptions::quick();
    let a = run_pipeline(&accel, &lib, &samples, &opts).expect("run a");
    let b = run_pipeline(&accel, &lib, &samples, &opts).expect("run b");
    assert_eq!(a.front_digest(), b.front_digest());
    assert_eq!(a.pseudo_front.len(), b.pseudo_front.len());
}
